//! Shared-pool parallel branch-and-bound ([`crate::SolverOptions::threads`]
//! `> 1`).
//!
//! The parallel search runs the *same* node computation as the sequential
//! one in [`crate::branch_bound`] — the LP re-solve from the
//! [`NodeData`] bound chain, plunging, heuristics, pseudocost branching —
//! under a different execution discipline, whose coordination half lives
//! in [`crate::pool`] (and is model-checked there by the interleaving
//! explorer):
//!
//! * **Shared open-node pool.** One lock-protected best-bound heap feeds
//!   every worker, preserving the global best-first order: each idle
//!   worker pops the open node with the smallest bound. While a worker
//!   plunges, the bound of its in-flight subtree is parked in a
//!   per-worker `active` slot so the global dual bound never forgets
//!   claimed-but-unfinished work.
//! * **Shared incumbent.** The best assignment lives under the pool lock;
//!   its objective is mirrored into an atomic (f64 bits) so workers prune
//!   mid-plunge without locking. Candidates are row-verified *outside* the
//!   lock, then re-checked for improvement under it — so concurrent
//!   discoveries serialize into a monotone non-increasing incumbent
//!   stream.
//! * **Per-worker scratch.** Each worker owns a private [`Simplex`] (with
//!   its own LU basis) and its own [`Pseudocosts`]; nothing numerical is
//!   shared, so no simplex state can be torn by concurrency.
//! * **Merged anytime stream.** The user callback is invoked only while
//!   holding the pool lock, which serializes events across workers:
//!   incumbent objectives are monotone, and every reported global bound is
//!   the minimum over the heap top, parked stalled subtrees, every
//!   worker's in-flight subtree bound, and the incumbent objective (the
//!   caps-at-incumbent invariant of the sequential search survives
//!   verbatim).
//! * **Global budgets.** Nodes are metered by one atomic counter across
//!   all workers — a `node_limit` (and therefore a deterministic budget
//!   derived from it) still bounds *total* work, not per-worker work. The
//!   wall-clock deadline is checked when acquiring a node, before every
//!   dive child, and inside each LP.
//!
//! Termination: a worker that finds the heap empty (or fully prunable)
//! while other workers are busy *waits* — the busy workers may still push
//! improving children. The search is over only when no worker holds a
//! subtree and the heap holds nothing worth expanding. Workers that
//! observe a halt (budget fired elsewhere) push their in-flight node back
//! into the heap, keeping the final reported bound sound.
//!
//! The search is **not** deterministic for `threads > 1`: node exploration
//! order depends on OS scheduling, so intermediate incumbents, node counts
//! at limits, and tie-broken optima may vary run to run. Optimal
//! objectives, certificates, and bound soundness do not.

use std::sync::Arc;

use milpjoin_shim::time as shim_time;

use crate::branch_bound::{
    apply_node_bounds, fractional_candidates, node_chain_bound, snap_integral, speculative_count,
    verify_rows, warm_start_candidate, NodeData, SearchOutcome, SolverEvent,
};
use crate::branching::{select_branching_var, Pseudocosts};
use crate::heuristics::{diving_heuristic, rounding_heuristic};
use crate::lp::LpProblem;
use crate::options::SolverOptions;
use crate::pool::{Open, Pool, PoolEvent, PoolLimits};
use crate::simplex::{LpStatus, Simplex, SimplexLimits};
use crate::solution::{IncumbentEvent, Solution};
use crate::status::{SearchStats, SolveStatus, StopReason};

/// Node payload in the shared pool: the bound chain (`None` = root).
type NodePayload = Option<Arc<NodeData>>;

/// Read-mostly numerical context shared by all workers; the coordination
/// state lives in the [`Pool`].
struct Ctx<'a> {
    lp: &'a LpProblem,
    opts: &'a SolverOptions,
}

/// Verifies a candidate against the original rows (outside any lock),
/// then offers it to the shared incumbent.
fn offer<F: FnMut(PoolEvent<'_, Vec<f64>>)>(
    ctx: &Ctx<'_>,
    pool: &Pool<NodePayload, Vec<f64>, F>,
    values: &[f64],
    obj: f64,
    current_bound: Option<f64>,
) -> bool {
    if !verify_rows(ctx.lp, values) {
        return false;
    }
    pool.offer_incumbent(values.to_vec(), obj, current_bound)
}

fn run_diving<F: FnMut(PoolEvent<'_, Vec<f64>>)>(
    ctx: &Ctx<'_>,
    pool: &Pool<NodePayload, Vec<f64>, F>,
    sx: &mut Simplex<'_>,
    current_obj: f64,
) {
    let (lb, ub) = {
        let (l, u) = sx.bounds();
        (l.to_vec(), u.to_vec())
    };
    if let Some((vals, obj)) = diving_heuristic(
        sx,
        ctx.lp,
        &lb,
        &ub,
        ctx.opts.integrality_tol,
        pool.deadline(),
    ) {
        let snapped = snap_integral(ctx.lp, vals);
        offer(ctx, pool, &snapped, obj, Some(current_obj));
    }
}

fn run_rounding<F: FnMut(PoolEvent<'_, Vec<f64>>)>(
    ctx: &Ctx<'_>,
    pool: &Pool<NodePayload, Vec<f64>, F>,
    sx: &mut Simplex<'_>,
    current_obj: f64,
) {
    let base = sx.values().to_vec();
    let (lb, ub) = {
        let (l, u) = sx.bounds();
        (l.to_vec(), u.to_vec())
    };
    if let Some((vals, obj)) = rounding_heuristic(sx, ctx.lp, &lb, &ub, &base, pool.deadline()) {
        let snapped = snap_integral(ctx.lp, vals);
        offer(ctx, pool, &snapped, obj, Some(current_obj));
    }
}

/// Per-worker counters, merged into the outcome after the workers join.
#[derive(Default)]
struct WorkerScratch {
    expanded_bounds: Vec<f64>,
    simplex_iterations: u64,
    infeasible_nodes: u64,
    cold_retries: u64,
    numerical_failures: u64,
    /// Root-relaxation simplex iterations — nonzero on exactly the worker
    /// that claimed the root node.
    root_lp_iterations: u64,
}

/// Expands one claimed node: the same plunge the sequential search runs,
/// against the shared pool and incumbent.
fn expand<F: FnMut(PoolEvent<'_, Vec<f64>>)>(
    ctx: &Ctx<'_>,
    pool: &Pool<NodePayload, Vec<f64>, F>,
    w: usize,
    sx: &mut Simplex<'_>,
    pseudo: &mut Pseudocosts,
    node: Open<NodePayload>,
    scratch: &mut WorkerScratch,
) {
    let mut current = Some((node.payload, /* warm */ false));
    let mut dive_depth = 0u32;
    while let Some((data, warm)) = current.take() {
        // Budget / halt checks before funding another LP. A worker that
        // backs out re-opens its node so the subtree bound stays valid.
        if pool.is_finished() {
            let bound = node_chain_bound(&data);
            pool.park_open(data, bound);
            return;
        }
        if pool.out_of_time() {
            let bound = node_chain_bound(&data);
            pool.halt_with(data, bound, StopReason::TimeLimit);
            return;
        }
        if pool.node_limit_reached() {
            let bound = node_chain_bound(&data);
            pool.halt_with(data, bound, StopReason::NodeLimit);
            return;
        }

        apply_node_bounds(sx, &data);
        if !warm {
            sx.install_slack_basis();
        }
        // Iteration count before this node's LP: the worker's simplex is
        // reused across nodes, so the root's share is a delta.
        let iters_before = sx.iterations_total();
        let mut res = sx.solve(&SimplexLimits {
            max_iterations: None,
            deadline: pool.deadline(),
        });
        if warm && res.status != LpStatus::Optimal {
            sx.install_slack_basis();
            res = sx.solve(&SimplexLimits {
                max_iterations: None,
                deadline: pool.deadline(),
            });
            scratch.cold_retries += 1;
        }
        if data.is_none() {
            scratch.root_lp_iterations += sx.iterations_total() - iters_before;
        }
        pool.count_node();
        scratch.expanded_bounds.push(node_chain_bound(&data));

        let stalled_feasible =
            res.status == LpStatus::IterationLimit && sx.primal_infeasibility() < 1e-5;

        match res.status {
            LpStatus::Infeasible => {
                scratch.infeasible_nodes += 1;
                pool.report_bound(None);
                break;
            }
            LpStatus::Unbounded => {
                if data.is_none() {
                    pool.finish_root_unbounded();
                    return;
                }
                scratch.numerical_failures += 1;
                pool.park_stalled(node_chain_bound(&data));
                break;
            }
            LpStatus::TimeLimit => {
                let bound = node_chain_bound(&data);
                pool.halt_with(data, bound, StopReason::TimeLimit);
                return;
            }
            LpStatus::IterationLimit if !stalled_feasible => {
                scratch.numerical_failures += 1;
                pool.park_stalled(node_chain_bound(&data));
                break;
            }
            LpStatus::IterationLimit | LpStatus::Optimal => {}
        }

        let exact = res.status == LpStatus::Optimal;
        let obj = if exact {
            res.objective
        } else {
            node_chain_bound(&data)
        };

        // Deadline re-check between the node LP and the work below.
        if pool.out_of_time() {
            pool.halt_with(data, obj, StopReason::TimeLimit);
            return;
        }

        if exact {
            if let Some(d) = &data {
                if d.parent_obj.is_finite() {
                    pseudo.record(d.var, d.frac, obj - d.parent_obj, d.up);
                }
            }
        }

        if pool.prunable_fast(obj) {
            pool.report_bound(None);
            break;
        }

        let candidates = fractional_candidates(sx, ctx.lp, ctx.opts.integrality_tol);
        if candidates.is_empty() {
            let point_obj = sx.objective();
            let values = sx.values()[..ctx.lp.num_structural].to_vec();
            let snapped = snap_integral(ctx.lp, values);
            offer(ctx, pool, &snapped, point_obj, None);
            pool.report_bound(None);
            break;
        }

        let Some((var, frac)) = select_branching_var(ctx.opts.branching, &candidates, pseudo)
        else {
            break;
        };
        let val = sx.values()[var];
        let (node_lb, node_ub) = {
            let (l, u) = sx.bounds();
            (l[var], u[var])
        };
        let depth = data.as_ref().map_or(0, |d| d.depth) + 1;

        // Root diving runs exactly once: only one node has no data (the
        // root), and exactly one worker claims it.
        if data.is_none() {
            if ctx.opts.root_diving {
                run_diving(ctx, pool, sx, obj);
            }
        } else if ctx.opts.heuristic_frequency > 0
            && pool.nodes().is_multiple_of(ctx.opts.heuristic_frequency)
        {
            run_rounding(ctx, pool, sx, obj);
        }

        let down = Arc::new(NodeData {
            parent: data.clone(),
            var,
            lb: node_lb,
            ub: val.floor(),
            parent_obj: obj,
            frac,
            up: false,
            depth,
        });
        let up = Arc::new(NodeData {
            parent: data.clone(),
            var,
            lb: val.ceil(),
            ub: node_ub,
            parent_obj: obj,
            frac,
            up: true,
            depth,
        });
        let (first, second) = if frac < 0.5 { (down, up) } else { (up, down) };

        dive_depth += 1;
        let keep_diving = dive_depth <= ctx.opts.max_dive_depth;
        // The in-flight subtree's bound tightened to this node's LP
        // objective; publish the children in one critical section.
        let mut children: Vec<(NodePayload, f64)> = vec![(Some(second), obj)];
        if !keep_diving {
            children.push((Some(Arc::clone(&first)), obj));
        }
        pool.publish_children(w, children, obj, keep_diving.then_some(obj));
        if keep_diving {
            current = Some((Some(first), true));
        }
    }
}

fn worker<F: FnMut(PoolEvent<'_, Vec<f64>>)>(
    ctx: &Ctx<'_>,
    pool: &Pool<NodePayload, Vec<f64>, F>,
    w: usize,
    scratch: &mut WorkerScratch,
) {
    let mut sx = Simplex::new(ctx.lp);
    let mut pseudo = Pseudocosts::new(ctx.lp.num_structural, &ctx.lp.obj);
    while let Some(node) = pool.acquire(w) {
        expand(ctx, pool, w, &mut sx, &mut pseudo, node, scratch);
        // Close out the claimed subtree: the worker no longer holds (or
        // has re-opened) it, so waiting workers re-check termination.
        pool.release(w);
    }
    scratch.simplex_iterations = sx.iterations_total();
}

/// Multi-worker branch-and-bound over a shared open-node pool. Same
/// arguments and [`SearchOutcome`] as the sequential
/// [`crate::branch_bound::BranchBound`]; see the module docs (and
/// [`crate::pool`]) for the protocol.
pub struct ParallelBranchBound<'a, F: FnMut(&SolverEvent) + Send> {
    lp: &'a LpProblem,
    opts: &'a SolverOptions,
    callback: F,
}

impl<'a, F: FnMut(&SolverEvent) + Send> ParallelBranchBound<'a, F> {
    pub fn new(lp: &'a LpProblem, opts: &'a SolverOptions, callback: F) -> Self {
        ParallelBranchBound { lp, opts, callback }
    }

    /// Runs the search to completion or a limit.
    pub fn run(self) -> SearchOutcome {
        let threads = self.opts.threads.max(1);
        let start = shim_time::now();
        let ctx = Ctx {
            lp: self.lp,
            opts: self.opts,
        };
        // Translate pool events (internal objective space) into the user's
        // anytime stream. The pool invokes this under its lock, so the
        // merged stream is ordered.
        let lp = self.lp;
        let mut callback = self.callback;
        let pool = Pool::new(
            PoolLimits {
                node_limit: self.opts.node_limit,
                relative_gap: self.opts.relative_gap,
                deadline: self.opts.time_limit.map(|d| start + d),
            },
            threads,
            move |ev: PoolEvent<'_, Vec<f64>>| match ev {
                PoolEvent::Bound { bound, nodes } => callback(&SolverEvent::BoundImproved {
                    elapsed: shim_time::now().saturating_duration_since(start),
                    bound: lp.user_objective(bound),
                    nodes,
                }),
                PoolEvent::Incumbent {
                    objective,
                    bound,
                    nodes,
                    solution,
                } => callback(&SolverEvent::Incumbent(IncumbentEvent {
                    elapsed: shim_time::now().saturating_duration_since(start),
                    objective: lp.user_objective(objective),
                    bound: lp.user_objective(bound),
                    nodes,
                    solution: Solution::new(lp.unscale_values(solution)),
                })),
            },
        );

        // Root node.
        pool.push_root(None, f64::NEG_INFINITY);

        // Warm start on the calling thread, before any worker launches:
        // the hinted incumbent seeds the shared incumbent, so every worker
        // prunes against it from its very first node and the anytime
        // stream opens with a finite objective at t ≈ 0.
        let warm_iterations = {
            let mut sx = Simplex::new(ctx.lp);
            if let Some((snapped, obj)) =
                warm_start_candidate(&mut sx, ctx.lp, ctx.opts, pool.deadline())
            {
                offer(&ctx, &pool, &snapped, obj, None);
            }
            sx.iterations_total()
        };

        let mut scratches: Vec<WorkerScratch> =
            (0..threads).map(|_| WorkerScratch::default()).collect();
        std::thread::scope(|scope| {
            for (w, scratch) in scratches.iter_mut().enumerate() {
                let (ctx, pool) = (&ctx, &pool);
                scope.spawn(move || worker(ctx, pool, w, scratch));
            }
        });

        // Workers joined: fold their private counters and map the pool
        // state to an outcome exactly as the sequential search does.
        let out = pool.finalize();
        let nodes = out.nodes;
        let mut expanded_bounds: Vec<f64> = Vec::new();
        let mut simplex_iterations = warm_iterations;
        let mut infeasible_nodes = 0u64;
        let mut cold_retries = 0u64;
        let mut numerical_failures = 0u64;
        let mut root_lp_iterations = 0u64;
        for s in &scratches {
            expanded_bounds.extend_from_slice(&s.expanded_bounds);
            simplex_iterations += s.simplex_iterations;
            infeasible_nodes += s.infeasible_nodes;
            cold_retries += s.cold_retries;
            numerical_failures += s.numerical_failures;
            root_lp_iterations += s.root_lp_iterations;
        }
        if std::env::var_os("MILP_STATS").is_some() {
            eprintln!(
                "bb[par x{threads}]: nodes={} infeasible={} cold_retries={} \
                 numerical_failures={} heap_left={}",
                nodes, infeasible_nodes, cold_retries, numerical_failures, out.heap_len
            );
        }

        let incumbent_obj = out.incumbent.as_ref().map(|(_, o)| *o);
        let mut stop = out.halt.unwrap_or(StopReason::Finished);
        if stop == StopReason::Finished && out.stalled_unresolved {
            stop = StopReason::Stalled;
        }
        let status = if out.root_unbounded {
            SolveStatus::Unbounded
        } else {
            match (incumbent_obj.is_some(), stop != StopReason::Finished) {
                (true, false) => SolveStatus::Optimal,
                (true, true) => {
                    if out.gap_reached {
                        SolveStatus::Optimal
                    } else {
                        SolveStatus::Feasible
                    }
                }
                (false, true) => SolveStatus::NoSolutionFound,
                (false, false) => SolveStatus::Infeasible,
            }
        };
        if status == SolveStatus::Optimal {
            stop = StopReason::Finished;
        }
        let final_bound = match (incumbent_obj, status) {
            (Some(obj), SolveStatus::Optimal) => obj,
            _ => out.bound,
        };
        let incumbent = out.incumbent;
        let speculative = speculative_count(&expanded_bounds, incumbent.as_ref());
        SearchOutcome {
            status,
            stop,
            incumbent,
            bound: final_bound,
            nodes,
            simplex_iterations,
            stats: SearchStats {
                nodes_expanded: nodes,
                workers_used: threads,
                speculative_nodes: speculative,
                root_lp_iterations,
                total_lp_iterations: simplex_iterations,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::solver::Solver;
    use std::sync::Mutex;

    fn knapsack(n: usize) -> Model {
        let mut m = Model::new("ks");
        let mut cap = crate::expr::LinExpr::new();
        let mut obj = crate::expr::LinExpr::new();
        for i in 0..n {
            let v = m.add_binary(format!("x{i}"));
            cap += v * (1.0 + (i % 5) as f64);
            obj += v * (1.5 + (i % 7) as f64 * 1.3);
        }
        m.add_le(cap, (n as f64) * 1.2, "cap");
        m.set_objective(obj, Sense::Maximize);
        m
    }

    #[test]
    fn parallel_matches_sequential_optimum() {
        let m = knapsack(14);
        let seq = Solver::new(SolverOptions::default()).solve(&m).unwrap();
        for threads in [2usize, 4] {
            let par = Solver::new(SolverOptions::default().threads(threads))
                .solve(&m)
                .unwrap();
            assert_eq!(par.status, SolveStatus::Optimal, "threads={threads}");
            assert_eq!(par.stop, StopReason::Finished);
            let (a, b) = (seq.objective.unwrap(), par.objective.unwrap());
            assert!((a - b).abs() < 1e-6, "threads={threads}: {a} vs {b}");
            // Proven optimal: bound equals objective.
            assert!((par.bound - b).abs() < 1e-6);
            assert_eq!(par.search.workers_used, threads);
            assert!(par.search.nodes_expanded >= 1);
        }
    }

    #[test]
    fn parallel_events_are_monotone() {
        let m = knapsack(16);
        let events = Mutex::new(Vec::new());
        let r = Solver::new(SolverOptions::default().threads(4))
            .solve_with_callback(&m, |ev| {
                if let SolverEvent::Incumbent(inc) = ev {
                    events.lock().unwrap().push(inc.objective);
                }
            })
            .unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        // Maximization incumbents must be non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{events:?}");
        }
        assert_eq!(events.last().copied(), r.objective);
    }

    #[test]
    fn parallel_infeasible() {
        let mut m = Model::new("inf");
        let x = m.add_integer(0.0, 10.0, "x");
        m.add_ge(x * 2.0, 3.0, "c0");
        m.add_le(x * 2.0, 3.5, "c1");
        m.set_objective(x.into(), Sense::Minimize);
        // Presolve would catch this; go through the raw search.
        let mut opts = SolverOptions::default().threads(3);
        opts.presolve = false;
        let r = Solver::new(opts).solve(&m).unwrap();
        assert_eq!(r.status, SolveStatus::Infeasible);
    }

    #[test]
    fn parallel_node_limit_is_global() {
        let m = knapsack(24);
        let mut opts = SolverOptions::default().threads(4);
        opts.node_limit = Some(5);
        opts.root_diving = false;
        opts.heuristic_frequency = 0;
        let r = Solver::new(opts).solve(&m).unwrap();
        // Metering is global: each in-flight worker may expand at most one
        // more node after the limit trips.
        assert!(
            r.nodes <= 5 + 4,
            "global node meter exceeded: {} nodes",
            r.nodes
        );
        if !r.status.has_solution() {
            assert_eq!(r.stop, StopReason::NodeLimit);
        }
    }

    #[test]
    fn parallel_warm_start_seeds_shared_incumbent() {
        let mut m = Model::new("ws");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(a * 3.0 + b * 4.0 + c * 2.0, 6.0, "cap");
        m.set_objective(a * 4.0 + b * 5.0 + c * 3.0, Sense::Maximize);
        let opts = SolverOptions::default().threads(2).initial_solution(vec![
            (a, 1.0),
            (b, 0.0),
            (c, 0.0),
        ]);
        let first_event = Mutex::new(None);
        let r = Solver::new(opts)
            .solve_with_callback(&m, |ev| {
                let mut guard = first_event.lock().unwrap();
                if guard.is_none() {
                    *guard = Some(matches!(ev, SolverEvent::Incumbent(_)));
                }
            })
            .unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!((r.objective.unwrap() - 8.0).abs() < 1e-6);
        assert_eq!(
            first_event.into_inner().unwrap(),
            Some(true),
            "warm start must be the first event, before any worker bound"
        );
    }
}
