//! Shared-pool parallel branch-and-bound ([`crate::SolverOptions::threads`]
//! `> 1`).
//!
//! The parallel search runs the *same* node computation as the sequential
//! one in [`crate::branch_bound`] — the LP re-solve from the
//! [`NodeData`] bound chain, plunging, heuristics, pseudocost branching —
//! under a different execution discipline:
//!
//! * **Shared open-node pool.** One lock-protected best-bound
//!   [`BinaryHeap`] feeds every worker, preserving the global best-first
//!   order: each idle worker pops the open node with the smallest bound.
//!   While a worker plunges, the bound of its in-flight subtree is parked
//!   in a per-worker `active` slot so the global dual bound never forgets
//!   claimed-but-unfinished work.
//! * **Shared incumbent.** The best assignment lives under the pool lock;
//!   its objective is mirrored into an atomic (f64 bits) so workers prune
//!   mid-plunge without locking. Candidates are row-verified *outside* the
//!   lock, then re-checked for improvement under it — so concurrent
//!   discoveries serialize into a monotone non-increasing incumbent
//!   stream.
//! * **Per-worker scratch.** Each worker owns a private [`Simplex`] (with
//!   its own LU basis) and its own [`Pseudocosts`]; nothing numerical is
//!   shared, so no simplex state can be torn by concurrency.
//! * **Merged anytime stream.** The user callback is invoked only while
//!   holding the pool lock, which serializes events across workers:
//!   incumbent objectives are monotone, and every reported global bound is
//!   the minimum over the heap top, parked stalled subtrees, every
//!   worker's in-flight subtree bound, and the incumbent objective (the
//!   caps-at-incumbent invariant of the sequential search survives
//!   verbatim).
//! * **Global budgets.** Nodes are metered by one atomic counter across
//!   all workers — a `node_limit` (and therefore a deterministic budget
//!   derived from it) still bounds *total* work, not per-worker work. The
//!   wall-clock deadline is checked when acquiring a node, before every
//!   dive child, and inside each LP.
//!
//! Termination: a worker that finds the heap empty (or fully prunable)
//! while other workers are busy *waits* — the busy workers may still push
//! improving children. The search is over only when no worker holds a
//! subtree and the heap holds nothing worth expanding. Workers that
//! observe a halt (budget fired elsewhere) push their in-flight node back
//! into the heap, keeping the final reported bound sound.
//!
//! The search is **not** deterministic for `threads > 1`: node exploration
//! order depends on OS scheduling, so intermediate incumbents, node counts
//! at limits, and tie-broken optima may vary run to run. Optimal
//! objectives, certificates, and bound soundness do not.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::branch_bound::{
    apply_node_bounds, fractional_candidates, node_chain_bound, snap_integral, speculative_count,
    verify_rows, warm_start_candidate, NodeData, OpenNode, SearchOutcome, SolverEvent,
};
use crate::branching::{select_branching_var, Pseudocosts};
use crate::heuristics::{diving_heuristic, rounding_heuristic};
use crate::lp::LpProblem;
use crate::options::SolverOptions;
use crate::simplex::{LpStatus, Simplex, SimplexLimits};
use crate::solution::{IncumbentEvent, Solution};
use crate::status::{SearchStats, SolveStatus, StopReason};

/// Mutable search state shared by all workers, guarded by one mutex.
struct PoolState<F> {
    heap: BinaryHeap<OpenNode>,
    seq: u64,
    /// Workers currently expanding a subtree.
    busy: usize,
    /// Per-worker bound of the claimed in-flight subtree (`None` when
    /// idle) — part of the global dual bound.
    active: Vec<Option<f64>>,
    /// Bounds of numerically stalled nodes, parked (never re-processed)
    /// so the global bound stays valid.
    stalled_bounds: Vec<f64>,
    incumbent: Option<(Vec<f64>, f64)>,
    last_bound_reported: f64,
    /// First budget that fired (first writer wins).
    halt: Option<StopReason>,
    /// Search over: set with `halt`, on natural exhaustion, or on the gap
    /// target.
    done: bool,
    root_unbounded: bool,
    /// Merged callback: invoked only under this lock, so events from all
    /// workers form one ordered stream.
    callback: F,
}

impl<F> PoolState<F> {
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// Per-worker counters, merged into the outcome after the workers join.
#[derive(Default)]
struct WorkerScratch {
    expanded_bounds: Vec<f64>,
    simplex_iterations: u64,
    infeasible_nodes: u64,
    cold_retries: u64,
    numerical_failures: u64,
}

/// Read-mostly shared context: problem, options, atomics, and the pool.
struct Shared<'a, F> {
    lp: &'a LpProblem,
    opts: &'a SolverOptions,
    start: Instant,
    deadline: Option<Instant>,
    /// Global node meter across all workers.
    nodes: AtomicU64,
    /// f64 bits of the incumbent objective (`+inf` when none): lock-free
    /// pruning mid-plunge. Written only under the pool lock.
    incumbent_bits: AtomicU64,
    /// Mirror of `PoolState::done` for cheap mid-plunge checks.
    finished: AtomicBool,
    state: Mutex<PoolState<F>>,
    work: Condvar,
}

impl<F: FnMut(&SolverEvent) + Send> Shared<'_, F> {
    fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn incumbent_obj_fast(&self) -> Option<f64> {
        let v = f64::from_bits(self.incumbent_bits.load(AtomicOrdering::Acquire));
        (v != f64::INFINITY).then_some(v)
    }

    fn prunable_against(&self, inc: Option<f64>, bound: f64) -> bool {
        match inc {
            Some(inc) => {
                let slack = self.opts.relative_gap * inc.abs().max(1e-10);
                bound >= inc - slack - 1e-12
            }
            None => false,
        }
    }

    /// Lock-free prune check against the atomic incumbent mirror.
    fn prunable_fast(&self, bound: f64) -> bool {
        self.prunable_against(self.incumbent_obj_fast(), bound)
    }

    /// Global dual bound (min space): heap top, stalled subtrees, every
    /// busy worker's in-flight subtree, `current`, capped at the incumbent
    /// (same soundness argument as the sequential search).
    fn global_bound(&self, st: &PoolState<F>, current: Option<f64>) -> f64 {
        let mut b = f64::INFINITY;
        if let Some(top) = st.heap.peek() {
            b = b.min(top.bound);
        }
        for &s in &st.stalled_bounds {
            b = b.min(s);
        }
        for a in st.active.iter().flatten() {
            b = b.min(*a);
        }
        if let Some(c) = current {
            b = b.min(c);
        }
        if let Some((_, obj)) = &st.incumbent {
            b = b.min(*obj);
        }
        b
    }

    fn maybe_report_bound(&self, st: &mut PoolState<F>, current: Option<f64>) {
        let b = self.global_bound(st, current);
        if b.is_finite() && b > st.last_bound_reported + 1e-9 * (1.0 + b.abs()) {
            st.last_bound_reported = b;
            let ev = SolverEvent::BoundImproved {
                elapsed: self.start.elapsed(),
                bound: self.lp.user_objective(b),
                nodes: self.nodes.load(AtomicOrdering::Relaxed),
            };
            (st.callback)(&ev);
        }
    }

    fn gap_reached(&self, st: &PoolState<F>, current: Option<f64>) -> bool {
        let Some((_, inc)) = &st.incumbent else {
            return false;
        };
        let bound = self.global_bound(st, current);
        if !bound.is_finite() {
            return false;
        }
        (inc - bound).max(0.0) / inc.abs().max(1e-10) <= self.opts.relative_gap
    }

    /// Verifies a candidate (outside the lock), then accepts it under the
    /// lock if it still improves on the shared incumbent. The acceptance,
    /// atomic-mirror update, and event all happen under the lock, so the
    /// merged incumbent stream is monotone.
    fn offer_incumbent(&self, values: &[f64], obj: f64, current_bound: Option<f64>) -> bool {
        if !verify_rows(self.lp, values) {
            return false;
        }
        let mut st = self.state.lock().unwrap();
        if let Some((_, best)) = &st.incumbent {
            if obj >= *best - 1e-12 * (1.0 + best.abs()) {
                return false;
            }
        }
        st.incumbent = Some((values.to_vec(), obj));
        self.incumbent_bits
            .store(obj.to_bits(), AtomicOrdering::Release);
        let bound = self.global_bound(&st, current_bound);
        let ev = SolverEvent::Incumbent(IncumbentEvent {
            elapsed: self.start.elapsed(),
            objective: self.lp.user_objective(obj),
            bound: self.lp.user_objective(bound.min(obj)),
            nodes: self.nodes.load(AtomicOrdering::Relaxed),
            solution: Solution::new(self.lp.unscale_values(values)),
        });
        (st.callback)(&ev);
        // A better incumbent changes prunability: waiting workers must
        // re-evaluate their termination conditions.
        self.work.notify_all();
        true
    }

    fn node_limit_reached(&self) -> bool {
        self.opts
            .node_limit
            .is_some_and(|n| self.nodes.load(AtomicOrdering::Relaxed) >= n)
    }

    /// Marks the search done under an already-held lock.
    fn finish(&self, st: &mut PoolState<F>, halt: Option<StopReason>) {
        if let Some(reason) = halt {
            st.halt.get_or_insert(reason);
        }
        st.done = true;
        self.finished.store(true, AtomicOrdering::Release);
        self.work.notify_all();
    }

    /// Re-opens a node (bound stays part of the global bound) and halts.
    fn halt_with(&self, data: Option<Arc<NodeData>>, bound: f64, reason: StopReason) {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq();
        st.heap.push(OpenNode { bound, seq, data });
        self.finish(&mut st, Some(reason));
    }

    /// Re-opens a node without halting (used when *another* worker ended
    /// the search while this one was mid-plunge).
    fn park_open(&self, data: Option<Arc<NodeData>>, bound: f64) {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq();
        st.heap.push(OpenNode { bound, seq, data });
    }

    fn report_bound(&self, current: Option<f64>) {
        let mut st = self.state.lock().unwrap();
        self.maybe_report_bound(&mut st, current);
    }

    /// Blocks until an expandable node is available (claiming it) or the
    /// search is over (`None`). Termination requires the heap to hold
    /// nothing worth expanding *and* no worker to be mid-subtree: a busy
    /// worker may still push children below the current heap top.
    fn acquire(&self, w: usize) -> Option<OpenNode> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.done {
                return None;
            }
            if self.out_of_time() {
                self.finish(&mut st, Some(StopReason::TimeLimit));
                return None;
            }
            match st.heap.peek().map(|n| n.bound) {
                Some(top) => {
                    let inc = st.incumbent.as_ref().map(|(_, o)| *o);
                    if self.prunable_against(inc, top) {
                        // Bound-ordered heap: every open node is prunable.
                        if st.busy == 0 {
                            self.finish(&mut st, None);
                            return None;
                        }
                    } else if self.node_limit_reached() {
                        self.finish(&mut st, Some(StopReason::NodeLimit));
                        return None;
                    } else if self.gap_reached(&st, None) {
                        self.finish(&mut st, None);
                        return None;
                    } else {
                        let node = st.heap.pop().expect("peeked above");
                        st.busy += 1;
                        st.active[w] = Some(node.bound);
                        return Some(node);
                    }
                }
                None => {
                    if st.busy == 0 {
                        // Tree exhausted.
                        self.finish(&mut st, None);
                        return None;
                    }
                }
            }
            // Nothing expandable right now: wait for a push, a new
            // incumbent, a subtree closing, or the end of the search.
            st = match self.deadline {
                Some(d) => {
                    let timeout = d
                        .saturating_duration_since(Instant::now())
                        .min(Duration::from_millis(20))
                        .max(Duration::from_millis(1));
                    self.work.wait_timeout(st, timeout).unwrap().0
                }
                None => self.work.wait(st).unwrap(),
            };
        }
    }
}

fn run_diving<F: FnMut(&SolverEvent) + Send>(
    shared: &Shared<'_, F>,
    sx: &mut Simplex<'_>,
    current_obj: f64,
) {
    let (lb, ub) = {
        let (l, u) = sx.bounds();
        (l.to_vec(), u.to_vec())
    };
    if let Some((vals, obj)) = diving_heuristic(
        sx,
        shared.lp,
        &lb,
        &ub,
        shared.opts.integrality_tol,
        shared.deadline,
    ) {
        let snapped = snap_integral(shared.lp, vals);
        shared.offer_incumbent(&snapped, obj, Some(current_obj));
    }
}

fn run_rounding<F: FnMut(&SolverEvent) + Send>(
    shared: &Shared<'_, F>,
    sx: &mut Simplex<'_>,
    current_obj: f64,
) {
    let base = sx.values().to_vec();
    let (lb, ub) = {
        let (l, u) = sx.bounds();
        (l.to_vec(), u.to_vec())
    };
    if let Some((vals, obj)) = rounding_heuristic(sx, shared.lp, &lb, &ub, &base, shared.deadline) {
        let snapped = snap_integral(shared.lp, vals);
        shared.offer_incumbent(&snapped, obj, Some(current_obj));
    }
}

/// Expands one claimed node: the same plunge the sequential search runs,
/// against the shared pool and incumbent.
fn expand<F: FnMut(&SolverEvent) + Send>(
    shared: &Shared<'_, F>,
    w: usize,
    sx: &mut Simplex<'_>,
    pseudo: &mut Pseudocosts,
    node: OpenNode,
    scratch: &mut WorkerScratch,
) {
    let mut current = Some((node.data, /* warm */ false));
    let mut dive_depth = 0u32;
    while let Some((data, warm)) = current.take() {
        // Budget / halt checks before funding another LP. A worker that
        // backs out re-opens its node so the subtree bound stays valid.
        if shared.finished.load(AtomicOrdering::Acquire) {
            let bound = node_chain_bound(&data);
            shared.park_open(data, bound);
            return;
        }
        if shared.out_of_time() {
            let bound = node_chain_bound(&data);
            shared.halt_with(data, bound, StopReason::TimeLimit);
            return;
        }
        if shared.node_limit_reached() {
            let bound = node_chain_bound(&data);
            shared.halt_with(data, bound, StopReason::NodeLimit);
            return;
        }

        apply_node_bounds(sx, &data);
        if !warm {
            sx.install_slack_basis();
        }
        let mut res = sx.solve(&SimplexLimits {
            max_iterations: None,
            deadline: shared.deadline,
        });
        if warm && res.status != LpStatus::Optimal {
            sx.install_slack_basis();
            res = sx.solve(&SimplexLimits {
                max_iterations: None,
                deadline: shared.deadline,
            });
            scratch.cold_retries += 1;
        }
        shared.nodes.fetch_add(1, AtomicOrdering::Relaxed);
        scratch.expanded_bounds.push(node_chain_bound(&data));

        let stalled_feasible =
            res.status == LpStatus::IterationLimit && sx.primal_infeasibility() < 1e-5;

        match res.status {
            LpStatus::Infeasible => {
                scratch.infeasible_nodes += 1;
                shared.report_bound(None);
                break;
            }
            LpStatus::Unbounded => {
                if data.is_none() {
                    let mut st = shared.state.lock().unwrap();
                    st.root_unbounded = true;
                    shared.finish(&mut st, None);
                    return;
                }
                scratch.numerical_failures += 1;
                let bound = node_chain_bound(&data);
                shared.state.lock().unwrap().stalled_bounds.push(bound);
                break;
            }
            LpStatus::TimeLimit => {
                let bound = node_chain_bound(&data);
                shared.halt_with(data, bound, StopReason::TimeLimit);
                return;
            }
            LpStatus::IterationLimit if !stalled_feasible => {
                scratch.numerical_failures += 1;
                let bound = node_chain_bound(&data);
                shared.state.lock().unwrap().stalled_bounds.push(bound);
                break;
            }
            LpStatus::IterationLimit | LpStatus::Optimal => {}
        }

        let exact = res.status == LpStatus::Optimal;
        let obj = if exact {
            res.objective
        } else {
            node_chain_bound(&data)
        };

        // Deadline re-check between the node LP and the work below.
        if shared.out_of_time() {
            shared.halt_with(data, obj, StopReason::TimeLimit);
            return;
        }

        if exact {
            if let Some(d) = &data {
                if d.parent_obj.is_finite() {
                    pseudo.record(d.var, d.frac, obj - d.parent_obj, d.up);
                }
            }
        }

        if shared.prunable_fast(obj) {
            shared.report_bound(None);
            break;
        }

        let candidates = fractional_candidates(sx, shared.lp, shared.opts.integrality_tol);
        if candidates.is_empty() {
            let point_obj = sx.objective();
            let values = sx.values()[..shared.lp.num_structural].to_vec();
            let snapped = snap_integral(shared.lp, values);
            shared.offer_incumbent(&snapped, point_obj, None);
            shared.report_bound(None);
            break;
        }

        let Some((var, frac)) = select_branching_var(shared.opts.branching, &candidates, pseudo)
        else {
            break;
        };
        let val = sx.values()[var];
        let (node_lb, node_ub) = {
            let (l, u) = sx.bounds();
            (l[var], u[var])
        };
        let depth = data.as_ref().map_or(0, |d| d.depth) + 1;

        // Root diving runs exactly once: only one node has no data (the
        // root), and exactly one worker claims it.
        if data.is_none() {
            if shared.opts.root_diving {
                run_diving(shared, sx, obj);
            }
        } else if shared.opts.heuristic_frequency > 0
            && shared
                .nodes
                .load(AtomicOrdering::Relaxed)
                .is_multiple_of(shared.opts.heuristic_frequency)
        {
            run_rounding(shared, sx, obj);
        }

        let down = Arc::new(NodeData {
            parent: data.clone(),
            var,
            lb: node_lb,
            ub: val.floor(),
            parent_obj: obj,
            frac,
            up: false,
            depth,
        });
        let up = Arc::new(NodeData {
            parent: data.clone(),
            var,
            lb: val.ceil(),
            ub: node_ub,
            parent_obj: obj,
            frac,
            up: true,
            depth,
        });
        let (first, second) = if frac < 0.5 { (down, up) } else { (up, down) };

        dive_depth += 1;
        let keep_diving = dive_depth <= shared.opts.max_dive_depth;
        {
            let mut st = shared.state.lock().unwrap();
            let seq = st.next_seq();
            st.heap.push(OpenNode {
                bound: obj,
                seq,
                data: Some(second),
            });
            if !keep_diving {
                let seq = st.next_seq();
                st.heap.push(OpenNode {
                    bound: obj,
                    seq,
                    data: Some(first.clone()),
                });
            }
            // The in-flight subtree's bound tightened to this node's LP
            // objective.
            st.active[w] = Some(obj);
            shared.maybe_report_bound(&mut st, keep_diving.then_some(obj));
            // New open work for idle workers.
            shared.work.notify_all();
        }
        if keep_diving {
            current = Some((Some(first), true));
        }
    }
}

fn worker<F: FnMut(&SolverEvent) + Send>(
    shared: &Shared<'_, F>,
    w: usize,
    scratch: &mut WorkerScratch,
) {
    let mut sx = Simplex::new(shared.lp);
    let mut pseudo = Pseudocosts::new(shared.lp.num_structural, &shared.lp.obj);
    while let Some(node) = shared.acquire(w) {
        expand(shared, w, &mut sx, &mut pseudo, node, scratch);
        // Close out the claimed subtree: the worker no longer holds (or
        // has re-opened) it, so its `active` slot empties and waiting
        // workers re-check termination.
        let mut st = shared.state.lock().unwrap();
        st.busy -= 1;
        st.active[w] = None;
        shared.maybe_report_bound(&mut st, None);
        shared.work.notify_all();
    }
    scratch.simplex_iterations = sx.iterations_total();
}

/// Multi-worker branch-and-bound over a shared open-node pool. Same
/// arguments and [`SearchOutcome`] as the sequential
/// [`crate::branch_bound::BranchBound`]; see the module docs for the
/// protocol.
pub struct ParallelBranchBound<'a, F: FnMut(&SolverEvent) + Send> {
    lp: &'a LpProblem,
    opts: &'a SolverOptions,
    callback: F,
}

impl<'a, F: FnMut(&SolverEvent) + Send> ParallelBranchBound<'a, F> {
    pub fn new(lp: &'a LpProblem, opts: &'a SolverOptions, callback: F) -> Self {
        ParallelBranchBound { lp, opts, callback }
    }

    /// Runs the search to completion or a limit.
    pub fn run(self) -> SearchOutcome {
        let threads = self.opts.threads.max(1);
        let start = Instant::now();
        let shared = Shared {
            lp: self.lp,
            opts: self.opts,
            start,
            deadline: self.opts.time_limit.map(|d| start + d),
            nodes: AtomicU64::new(0),
            incumbent_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            finished: AtomicBool::new(false),
            state: Mutex::new(PoolState {
                heap: BinaryHeap::new(),
                seq: 0,
                busy: 0,
                active: vec![None; threads],
                stalled_bounds: Vec::new(),
                incumbent: None,
                last_bound_reported: f64::NEG_INFINITY,
                halt: None,
                done: false,
                root_unbounded: false,
                callback: self.callback,
            }),
            work: Condvar::new(),
        };

        // Root node.
        {
            let mut st = shared.state.lock().unwrap();
            let seq = st.next_seq();
            st.heap.push(OpenNode {
                bound: f64::NEG_INFINITY,
                seq,
                data: None,
            });
        }

        // Warm start on the calling thread, before any worker launches:
        // the hinted incumbent seeds the shared incumbent, so every worker
        // prunes against it from its very first node and the anytime
        // stream opens with a finite objective at t ≈ 0.
        let warm_iterations = {
            let mut sx = Simplex::new(shared.lp);
            if let Some((snapped, obj)) =
                warm_start_candidate(&mut sx, shared.lp, shared.opts, shared.deadline)
            {
                shared.offer_incumbent(&snapped, obj, None);
            }
            sx.iterations_total()
        };

        let mut scratches: Vec<WorkerScratch> =
            (0..threads).map(|_| WorkerScratch::default()).collect();
        std::thread::scope(|scope| {
            for (w, scratch) in scratches.iter_mut().enumerate() {
                let shared = &shared;
                scope.spawn(move || worker(shared, w, scratch));
            }
        });

        // Workers joined: fold their private counters and map the pool
        // state to an outcome exactly as the sequential search does.
        let nodes = shared.nodes.load(AtomicOrdering::Relaxed);
        let st = shared.state.lock().unwrap();
        let mut expanded_bounds: Vec<f64> = Vec::new();
        let mut simplex_iterations = warm_iterations;
        let mut infeasible_nodes = 0u64;
        let mut cold_retries = 0u64;
        let mut numerical_failures = 0u64;
        for s in &scratches {
            expanded_bounds.extend_from_slice(&s.expanded_bounds);
            simplex_iterations += s.simplex_iterations;
            infeasible_nodes += s.infeasible_nodes;
            cold_retries += s.cold_retries;
            numerical_failures += s.numerical_failures;
        }
        if std::env::var_os("MILP_STATS").is_some() {
            eprintln!(
                "bb[par x{threads}]: nodes={} infeasible={} cold_retries={} \
                 numerical_failures={} heap_left={}",
                nodes,
                infeasible_nodes,
                cold_retries,
                numerical_failures,
                st.heap.len()
            );
        }

        let incumbent_obj = st.incumbent.as_ref().map(|(_, o)| *o);
        let mut stop = st.halt.unwrap_or(StopReason::Finished);
        if stop == StopReason::Finished
            && st
                .stalled_bounds
                .iter()
                .any(|&b| !shared.prunable_against(incumbent_obj, b))
        {
            stop = StopReason::Stalled;
        }
        let bound = shared.global_bound(&st, None);
        let status = if st.root_unbounded {
            SolveStatus::Unbounded
        } else {
            match (incumbent_obj.is_some(), stop != StopReason::Finished) {
                (true, false) => SolveStatus::Optimal,
                (true, true) => {
                    if shared.gap_reached(&st, None) {
                        SolveStatus::Optimal
                    } else {
                        SolveStatus::Feasible
                    }
                }
                (false, true) => SolveStatus::NoSolutionFound,
                (false, false) => SolveStatus::Infeasible,
            }
        };
        if status == SolveStatus::Optimal {
            stop = StopReason::Finished;
        }
        let final_bound = match (incumbent_obj, status) {
            (Some(obj), SolveStatus::Optimal) => obj,
            _ => bound,
        };
        let incumbent = {
            // Extract the incumbent out of the (now-exclusive) pool state.
            drop(st);
            shared.state.into_inner().unwrap().incumbent
        };
        let speculative = speculative_count(&expanded_bounds, incumbent.as_ref());
        SearchOutcome {
            status,
            stop,
            incumbent,
            bound: final_bound,
            nodes,
            simplex_iterations,
            stats: SearchStats {
                nodes_expanded: nodes,
                workers_used: threads,
                speculative_nodes: speculative,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::solver::Solver;

    fn knapsack(n: usize) -> Model {
        let mut m = Model::new("ks");
        let mut cap = crate::expr::LinExpr::new();
        let mut obj = crate::expr::LinExpr::new();
        for i in 0..n {
            let v = m.add_binary(format!("x{i}"));
            cap += v * (1.0 + (i % 5) as f64);
            obj += v * (1.5 + (i % 7) as f64 * 1.3);
        }
        m.add_le(cap, (n as f64) * 1.2, "cap");
        m.set_objective(obj, Sense::Maximize);
        m
    }

    #[test]
    fn parallel_matches_sequential_optimum() {
        let m = knapsack(14);
        let seq = Solver::new(SolverOptions::default()).solve(&m).unwrap();
        for threads in [2usize, 4] {
            let par = Solver::new(SolverOptions::default().threads(threads))
                .solve(&m)
                .unwrap();
            assert_eq!(par.status, SolveStatus::Optimal, "threads={threads}");
            assert_eq!(par.stop, StopReason::Finished);
            let (a, b) = (seq.objective.unwrap(), par.objective.unwrap());
            assert!((a - b).abs() < 1e-6, "threads={threads}: {a} vs {b}");
            // Proven optimal: bound equals objective.
            assert!((par.bound - b).abs() < 1e-6);
            assert_eq!(par.search.workers_used, threads);
            assert!(par.search.nodes_expanded >= 1);
        }
    }

    #[test]
    fn parallel_events_are_monotone() {
        let m = knapsack(16);
        let events = Mutex::new(Vec::new());
        let r = Solver::new(SolverOptions::default().threads(4))
            .solve_with_callback(&m, |ev| {
                if let SolverEvent::Incumbent(inc) = ev {
                    events.lock().unwrap().push(inc.objective);
                }
            })
            .unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        let events = events.into_inner().unwrap();
        assert!(!events.is_empty());
        // Maximization incumbents must be non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "{events:?}");
        }
        assert_eq!(events.last().copied(), r.objective);
    }

    #[test]
    fn parallel_infeasible() {
        let mut m = Model::new("inf");
        let x = m.add_integer(0.0, 10.0, "x");
        m.add_ge(x * 2.0, 3.0, "c0");
        m.add_le(x * 2.0, 3.5, "c1");
        m.set_objective(x.into(), Sense::Minimize);
        // Presolve would catch this; go through the raw search.
        let mut opts = SolverOptions::default().threads(3);
        opts.presolve = false;
        let r = Solver::new(opts).solve(&m).unwrap();
        assert_eq!(r.status, SolveStatus::Infeasible);
    }

    #[test]
    fn parallel_node_limit_is_global() {
        let m = knapsack(24);
        let mut opts = SolverOptions::default().threads(4);
        opts.node_limit = Some(5);
        opts.root_diving = false;
        opts.heuristic_frequency = 0;
        let r = Solver::new(opts).solve(&m).unwrap();
        // Metering is global: each in-flight worker may expand at most one
        // more node after the limit trips.
        assert!(
            r.nodes <= 5 + 4,
            "global node meter exceeded: {} nodes",
            r.nodes
        );
        if !r.status.has_solution() {
            assert_eq!(r.stop, StopReason::NodeLimit);
        }
    }

    #[test]
    fn parallel_warm_start_seeds_shared_incumbent() {
        let mut m = Model::new("ws");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(a * 3.0 + b * 4.0 + c * 2.0, 6.0, "cap");
        m.set_objective(a * 4.0 + b * 5.0 + c * 3.0, Sense::Maximize);
        let opts = SolverOptions::default().threads(2).initial_solution(vec![
            (a, 1.0),
            (b, 0.0),
            (c, 0.0),
        ]);
        let first_event = Mutex::new(None);
        let r = Solver::new(opts)
            .solve_with_callback(&m, |ev| {
                let mut guard = first_event.lock().unwrap();
                if guard.is_none() {
                    *guard = Some(matches!(ev, SolverEvent::Incumbent(_)));
                }
            })
            .unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!((r.objective.unwrap() - 8.0).abs() < 1e-6);
        assert_eq!(
            first_event.into_inner().unwrap(),
            Some(true),
            "warm start must be the first event, before any worker bound"
        );
    }
}
