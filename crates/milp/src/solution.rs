//! Solutions, incumbents, and solve results.

use std::time::Duration;

use crate::model::Var;
use crate::status::{SearchStats, SolveStatus, StopReason};

/// A (feasible) assignment of values to the model variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
}

impl Solution {
    pub fn new(values: Vec<f64>) -> Self {
        Solution { values }
    }

    /// Value of a variable.
    pub fn value(&self, v: Var) -> f64 {
        self.values[v.index()]
    }

    /// Rounded 0/1 interpretation of a binary variable.
    pub fn is_one(&self, v: Var) -> bool {
        self.value(v) > 0.5
    }

    /// All values, indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Emitted every time the branch-and-bound search finds an improving
/// incumbent — the anytime stream the paper's evaluation is built on.
#[derive(Debug, Clone)]
pub struct IncumbentEvent {
    /// Time since the solve started.
    pub elapsed: Duration,
    /// Objective of the new incumbent (model sense).
    pub objective: f64,
    /// Global dual bound at this moment (model sense).
    pub bound: f64,
    /// Nodes processed so far.
    pub nodes: u64,
    /// The incumbent assignment.
    pub solution: Solution,
}

impl IncumbentEvent {
    /// Guaranteed optimality factor `objective / bound` for minimization
    /// problems with positive costs (the paper's Figure 2 metric). Returns
    /// `None` when the bound is non-positive or not yet meaningful.
    pub fn optimality_factor(&self) -> Option<f64> {
        if self.bound > 0.0 && self.objective.is_finite() {
            Some(self.objective / self.bound)
        } else {
            None
        }
    }
}

/// Final result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MipResult {
    pub status: SolveStatus,
    /// Which budget (if any) cut the search short
    /// ([`crate::status::StopReason::Finished`] for conclusive verdicts).
    /// Lets callers classify a limit-stopped solve precisely: a node-budget
    /// stop is deterministic (a resource limit), a deadline stop is a
    /// timeout.
    pub stop: StopReason,
    /// Objective of the best incumbent (model sense).
    pub objective: Option<f64>,
    /// Final global dual bound (model sense).
    pub bound: f64,
    /// Best incumbent.
    pub solution: Option<Solution>,
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// Total simplex iterations.
    pub simplex_iterations: u64,
    /// Wall-clock time spent.
    pub solve_time: Duration,
    /// Search observability counters (nodes expanded, workers used,
    /// speculative work).
    pub search: SearchStats,
}

impl MipResult {
    /// Relative gap `(objective - bound) / max(|objective|, eps)` in
    /// minimization orientation; `None` without an incumbent.
    pub fn relative_gap(&self) -> Option<f64> {
        let obj = self.objective?;
        let denom = obj.abs().max(1e-10);
        Some(((obj - self.bound).max(0.0)) / denom)
    }

    /// Convenience accessor that panics without a solution.
    pub fn solution_ref(&self) -> &Solution {
        // audit-allow(no-panic): documented panicking convenience accessor
        // (see the doc comment); fallible callers use `solution` directly.
        self.solution.as_ref().expect("no incumbent available")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let s = Solution::new(vec![0.0, 0.99, 2.5]);
        assert!(!s.is_one(Var::from_index(0)));
        assert!(s.is_one(Var::from_index(1)));
        assert_eq!(s.value(Var::from_index(2)), 2.5);
    }

    #[test]
    fn optimality_factor() {
        let ev = IncumbentEvent {
            elapsed: Duration::from_secs(1),
            objective: 10.0,
            bound: 5.0,
            nodes: 3,
            solution: Solution::new(vec![]),
        };
        assert_eq!(ev.optimality_factor(), Some(2.0));
        let ev0 = IncumbentEvent { bound: 0.0, ..ev };
        assert_eq!(ev0.optimality_factor(), None);
    }

    #[test]
    fn relative_gap() {
        let r = MipResult {
            status: SolveStatus::Feasible,
            stop: StopReason::NodeLimit,
            objective: Some(10.0),
            bound: 9.0,
            solution: Some(Solution::new(vec![])),
            nodes: 0,
            simplex_iterations: 0,
            solve_time: Duration::ZERO,
            search: SearchStats::default(),
        };
        assert!((r.relative_gap().unwrap() - 0.1).abs() < 1e-12);
    }
}
