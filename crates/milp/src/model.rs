//! MILP model builder: variables, constraints, objective.
//!
//! A [`Model`] is the user-facing description of a mixed integer linear
//! program:
//!
//! ```text
//! minimize    c' x
//! subject to  lo_i <= a_i' x <= hi_i   for every constraint i
//!             lb_j <= x_j <= ub_j      for every variable j
//!             x_j integer              for integer/binary variables
//! ```
//!
//! The solver (see [`crate::solver::Solver`]) consumes a `Model` by value or
//! reference and never mutates it.

use std::fmt;

use crate::expr::LinExpr;

/// Handle to a model variable. Cheap to copy; indexes into the owning model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Reconstructs a handle from a raw index. Only meaningful against the
    /// model that produced the index.
    pub fn from_index(i: usize) -> Self {
        Var(i as u32)
    }

    /// The raw index of this variable in its model.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstrId(u32);

impl ConstrId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Variable integrality class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Integer variable with implied bounds `[0, 1]`.
    Binary,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    #[default]
    Minimize,
    Maximize,
}

/// A variable definition inside a model.
#[derive(Debug, Clone)]
pub struct VarData {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub vtype: VarType,
}

/// A stored constraint: `lo <= sum coeffs * vars <= hi`.
///
/// Equalities have `lo == hi`; one-sided constraints use infinite bounds.
/// Coefficients are compressed (sorted by variable, duplicates merged, zeros
/// dropped) and any constant in the source expression has been folded into
/// the bounds.
#[derive(Debug, Clone)]
pub struct ConstrData {
    pub name: String,
    pub terms: Vec<(Var, f64)>,
    pub lo: f64,
    pub hi: f64,
}

/// Errors detected while building or validating a model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A variable lower bound exceeds its upper bound.
    InvalidBounds { var: String, lb: f64, ub: f64 },
    /// A bound or coefficient is NaN.
    NotFinite { context: String },
    /// A constraint has `lo > hi`.
    InvalidConstraint { constr: String, lo: f64, hi: f64 },
    /// An expression references a variable not in this model.
    UnknownVariable { index: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidBounds { var, lb, ub } => {
                write!(f, "variable {var} has invalid bounds [{lb}, {ub}]")
            }
            ModelError::NotFinite { context } => write!(f, "NaN encountered in {context}"),
            ModelError::InvalidConstraint { constr, lo, hi } => {
                write!(f, "constraint {constr} has invalid range [{lo}, {hi}]")
            }
            ModelError::UnknownVariable { index } => {
                write!(f, "expression references unknown variable #{index}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A mixed integer linear programming model.
#[derive(Debug, Clone, Default)]
pub struct Model {
    name: String,
    vars: Vec<VarData>,
    constrs: Vec<ConstrData>,
    objective: Vec<(Var, f64)>,
    objective_constant: f64,
    sense: Sense,
}

impl Model {
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a continuous variable with the given bounds.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> Var {
        self.add_var(lb, ub, VarType::Continuous, name)
    }

    /// Adds an integer variable with the given bounds.
    pub fn add_integer(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> Var {
        self.add_var(lb, ub, VarType::Integer, name)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> Var {
        self.add_var(0.0, 1.0, VarType::Binary, name)
    }

    /// Adds a variable of arbitrary type and bounds.
    pub fn add_var(&mut self, lb: f64, ub: f64, vtype: VarType, name: impl Into<String>) -> Var {
        let (lb, ub) = match vtype {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        let v = Var(self.vars.len() as u32);
        self.vars.push(VarData {
            name: name.into(),
            lb,
            ub,
            vtype,
        });
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constrs(&self) -> usize {
        self.constrs.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.vtype != VarType::Continuous)
            .count()
    }

    /// Total number of nonzero constraint coefficients.
    pub fn num_nonzeros(&self) -> usize {
        self.constrs.iter().map(|c| c.terms.len()).sum()
    }

    pub fn var_data(&self, v: Var) -> &VarData {
        &self.vars[v.index()]
    }

    pub fn vars(&self) -> &[VarData] {
        &self.vars
    }

    pub fn constrs(&self) -> &[ConstrData] {
        &self.constrs
    }

    /// Tightens the bounds of an existing variable (intersection with the
    /// current bounds).
    pub fn tighten_var_bounds(&mut self, v: Var, lb: f64, ub: f64) {
        let d = &mut self.vars[v.index()];
        d.lb = d.lb.max(lb);
        d.ub = d.ub.min(ub);
    }

    /// Adds the constraint `expr <= rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: f64, name: impl Into<String>) -> ConstrId {
        self.add_range(f64::NEG_INFINITY, expr, rhs, name)
    }

    /// Adds the constraint `expr >= rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: f64, name: impl Into<String>) -> ConstrId {
        self.add_range(rhs, expr, f64::INFINITY, name)
    }

    /// Adds the constraint `expr == rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: f64, name: impl Into<String>) -> ConstrId {
        self.add_range(rhs, expr, rhs, name)
    }

    /// Adds the ranged constraint `lo <= expr <= hi`. Any constant part of
    /// `expr` is folded into the bounds.
    pub fn add_range(
        &mut self,
        lo: f64,
        expr: LinExpr,
        hi: f64,
        name: impl Into<String>,
    ) -> ConstrId {
        let (terms, constant) = expr.compress();
        let id = ConstrId(self.constrs.len() as u32);
        self.constrs.push(ConstrData {
            name: name.into(),
            terms,
            lo: lo - constant,
            hi: hi - constant,
        });
        id
    }

    /// Sets the objective function. The constant part is carried through to
    /// reported objective values.
    pub fn set_objective(&mut self, expr: LinExpr, sense: Sense) {
        let (terms, constant) = expr.compress();
        self.objective = terms;
        self.objective_constant = constant;
        self.sense = sense;
    }

    pub fn objective(&self) -> &[(Var, f64)] {
        &self.objective
    }

    pub fn objective_constant(&self) -> f64 {
        self.objective_constant
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Dense objective coefficient vector (minimization orientation).
    pub fn objective_dense_min(&self) -> Vec<f64> {
        let sign = match self.sense {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let mut c = vec![0.0; self.vars.len()];
        for (v, coeff) in &self.objective {
            c[v.index()] = sign * coeff;
        }
        c
    }

    /// Validates bounds, finiteness, and variable references.
    pub fn validate(&self) -> Result<(), ModelError> {
        for v in &self.vars {
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(ModelError::NotFinite {
                    context: format!("bounds of {}", v.name),
                });
            }
            if v.lb > v.ub {
                return Err(ModelError::InvalidBounds {
                    var: v.name.clone(),
                    lb: v.lb,
                    ub: v.ub,
                });
            }
        }
        for c in &self.constrs {
            if c.lo.is_nan() || c.hi.is_nan() {
                return Err(ModelError::NotFinite {
                    context: format!("bounds of {}", c.name),
                });
            }
            if c.lo > c.hi {
                return Err(ModelError::InvalidConstraint {
                    constr: c.name.clone(),
                    lo: c.lo,
                    hi: c.hi,
                });
            }
            for (v, coeff) in &c.terms {
                if v.index() >= self.vars.len() {
                    return Err(ModelError::UnknownVariable { index: v.index() });
                }
                if coeff.is_nan() {
                    return Err(ModelError::NotFinite {
                        context: format!("coefficient in {}", c.name),
                    });
                }
            }
        }
        for (v, coeff) in &self.objective {
            if v.index() >= self.vars.len() {
                return Err(ModelError::UnknownVariable { index: v.index() });
            }
            if coeff.is_nan() {
                return Err(ModelError::NotFinite {
                    context: "objective".into(),
                });
            }
        }
        Ok(())
    }

    /// Checks whether a dense assignment satisfies all constraints, bounds,
    /// and integrality requirements within `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (j, v) in self.vars.iter().enumerate() {
            let x = values[j];
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.vtype != VarType::Continuous && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constrs {
            let mut act = 0.0;
            for (v, coeff) in &c.terms {
                act += coeff * values[v.index()];
            }
            // Scale the tolerance by the constraint magnitude so that huge
            // coefficients (e.g. big-M rows) do not spuriously fail.
            let scale = 1.0 + act.abs().max(c.lo.abs().min(c.hi.abs()));
            if act < c.lo - tol * scale || act > c.hi + tol * scale {
                return false;
            }
        }
        true
    }

    /// Evaluates the (sense-respecting) objective for an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        let mut acc = self.objective_constant;
        for (v, coeff) in &self.objective {
            acc += coeff * values[v.index()];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        let y = m.add_binary("y");
        m.add_le(x + y * 5.0, 8.0, "c0");
        m.set_objective(x * -1.0 - y, Sense::Minimize);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constrs(), 1);
        assert_eq!(m.num_integer_vars(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn constant_folded_into_constraint_bounds() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        m.add_le(x + 3.0, 8.0, "c0");
        assert_eq!(m.constrs()[0].hi, 5.0);
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new("t");
        let b = m.add_var(-5.0, 7.0, VarType::Binary, "b");
        assert_eq!(m.var_data(b).lb, 0.0);
        assert_eq!(m.var_data(b).ub, 1.0);
    }

    #[test]
    fn validate_rejects_crossed_bounds() {
        let mut m = Model::new("t");
        m.add_continuous(1.0, 0.0, "x");
        assert!(matches!(
            m.validate(),
            Err(ModelError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        let y = m.add_integer(0.0, 5.0, "y");
        m.add_eq(x + y, 4.0, "c");
        assert!(m.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[1.5, 3.0], 1e-9)); // violates equality
        assert!(!m.is_feasible(&[1.5, 2.5], 1e-9)); // y fractional
    }

    #[test]
    fn objective_dense_respects_sense() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 1.0, "x");
        m.set_objective(x * 2.0, Sense::Maximize);
        assert_eq!(m.objective_dense_min(), vec![-2.0]);
    }
}
