//! Public solve facade: validation, presolve, search, result mapping.

use std::fmt;

use crate::branch_bound::{BranchBound, SolverEvent};
use crate::lp::LpProblem;
use crate::model::{Model, ModelError};
use crate::options::SolverOptions;
use crate::parallel::ParallelBranchBound;
use crate::presolve::{presolve, PresolveOutcome};
use crate::solution::{MipResult, Solution};
use crate::status::{SearchStats, SolveStatus};

/// Errors surfaced before the search starts.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    Model(ModelError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

/// The MILP solver entry point.
///
/// ```
/// use milpjoin_milp::{Model, Sense, Solver, SolverOptions};
/// let mut m = Model::new("tiny");
/// let x = m.add_integer(0.0, 10.0, "x");
/// m.add_le(x * 3.0, 10.0, "c");
/// m.set_objective(x.into(), Sense::Maximize);
/// let r = Solver::new(SolverOptions::default()).solve(&m).unwrap();
/// assert_eq!(r.objective, Some(3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    options: SolverOptions,
}

// Concurrency audit: the solver facade is options-only and every solve
// builds its own working model, LP, and branch-and-bound state on the call
// stack (no interior mutability, no shared scratch), so solvers, models,
// and results may cross thread boundaries freely — the property the
// parallel session executor in `milpjoin-qopt` is built on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
    assert_send_sync::<SolverOptions>();
    assert_send_sync::<Model>();
    assert_send_sync::<MipResult>();
    assert_send_sync::<crate::solution::Solution>();
    assert_send_sync::<crate::branch_bound::SolverEvent>();
};

impl Solver {
    pub fn new(options: SolverOptions) -> Self {
        Solver { options }
    }

    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Solves the model, discarding intermediate events.
    pub fn solve(&self, model: &Model) -> Result<MipResult, SolveError> {
        self.solve_with_callback(model, |_| {})
    }

    /// Solves the model, invoking `callback` on every incumbent and global
    /// bound improvement (the anytime stream). With
    /// [`SolverOptions::threads`] `> 1` the events of all workers are
    /// merged into one stream (serialized under the shared-pool lock, so
    /// incumbent objectives stay monotone and bounds stay sound); the
    /// callback therefore must be `Send` — it may run on a worker thread.
    pub fn solve_with_callback(
        &self,
        model: &Model,
        callback: impl FnMut(&SolverEvent) + Send,
    ) -> Result<MipResult, SolveError> {
        model.validate()?;
        let start = milpjoin_shim::time::now();

        let mut working = model.clone();
        if self.options.presolve {
            if let PresolveOutcome::Infeasible = presolve(&mut working, 10) {
                return Ok(MipResult {
                    status: SolveStatus::Infeasible,
                    stop: crate::status::StopReason::Finished,
                    objective: None,
                    bound: f64::NAN,
                    solution: None,
                    nodes: 0,
                    simplex_iterations: 0,
                    solve_time: start.elapsed(),
                    search: SearchStats::default(),
                });
            }
        }

        let lp = LpProblem::from_model(&working);
        // `threads <= 1` takes the historical sequential path untouched —
        // this is what keeps the default bit-identical to the
        // single-threaded solver.
        let outcome = if self.options.threads > 1 {
            ParallelBranchBound::new(&lp, &self.options, callback).run()
        } else {
            BranchBound::new(&lp, &self.options, callback).run()
        };

        let objective = outcome
            .incumbent
            .as_ref()
            .map(|(_, obj)| lp.user_objective(*obj));
        let solution = outcome
            .incumbent
            .map(|(vals, _)| Solution::new(lp.unscale_values(&vals)));
        Ok(MipResult {
            status: outcome.status,
            stop: outcome.stop,
            objective,
            bound: lp.user_objective(outcome.bound),
            solution,
            nodes: outcome.nodes,
            simplex_iterations: outcome.simplex_iterations,
            solve_time: start.elapsed(),
            search: outcome.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use std::time::Duration;

    #[test]
    fn knapsack_via_facade() {
        let mut m = Model::new("ks");
        let items = [(3.0, 4.0), (4.0, 5.0), (2.0, 3.0)];
        let vars: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, _)| m.add_binary(format!("x{i}")))
            .collect();
        let weight: crate::expr::LinExpr = vars.iter().zip(&items).map(|(&v, &(w, _))| v * w).sum();
        let value: crate::expr::LinExpr = vars.iter().zip(&items).map(|(&v, &(_, p))| v * p).sum();
        m.add_le(weight, 6.0, "cap");
        m.set_objective(value, Sense::Maximize);
        let r = Solver::new(SolverOptions::default()).solve(&m).unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert_eq!(r.objective, Some(8.0));
        let sol = r.solution_ref();
        assert!(m.is_feasible(sol.values(), 1e-6));
        assert!(r.relative_gap().unwrap() <= 1e-6);
    }

    #[test]
    fn invalid_model_rejected() {
        let mut m = Model::new("bad");
        m.add_continuous(2.0, 1.0, "x");
        let err = Solver::default().solve(&m).unwrap_err();
        assert!(matches!(err, SolveError::Model(_)));
    }

    #[test]
    fn presolve_catches_infeasibility() {
        let mut m = Model::new("inf");
        let x = m.add_integer(0.0, 1.0, "x");
        m.add_ge(x * 1.0, 3.0, "c");
        m.set_objective(x.into(), Sense::Minimize);
        let r = Solver::default().solve(&m).unwrap();
        assert_eq!(r.status, SolveStatus::Infeasible);
    }

    #[test]
    fn time_limit_respected() {
        // A model small enough to solve instantly still must return quickly
        // with an aggressive limit.
        let mut m = Model::new("tl");
        let x = m.add_integer(0.0, 5.0, "x");
        m.set_objective(x.into(), Sense::Maximize);
        let opts = SolverOptions::with_time_limit(Duration::from_millis(200));
        let start = milpjoin_shim::time::now();
        let r = Solver::new(opts).solve(&m).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(r.status.has_solution() || r.status == SolveStatus::NoSolutionFound);
    }

    #[test]
    fn anytime_callback_receives_events() {
        let mut m = Model::new("anytime");
        let n = 10;
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut w = crate::expr::LinExpr::new();
        let mut p = crate::expr::LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            w += v * (1.0 + (i % 4) as f64);
            p += v * (1.0 + (i % 5) as f64 * 1.7);
        }
        m.add_le(w, 9.0, "cap");
        m.set_objective(p, Sense::Maximize);
        let mut events = Vec::new();
        let r = Solver::default()
            .solve_with_callback(&m, |ev| {
                if let SolverEvent::Incumbent(inc) = ev {
                    events.push(inc.objective);
                }
            })
            .unwrap();
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!(!events.is_empty());
        // Maximization incumbents must be non-decreasing.
        for pair in events.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
        assert_eq!(events.last().copied(), r.objective);
    }
}
