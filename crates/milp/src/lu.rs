//! Sparse LU factorization of the simplex basis, with product-form updates.
//!
//! The basis matrix `B` (one column per basic variable) is factorized with a
//! left-looking sparse LU (Gilbert–Peierls style) using partial pivoting by
//! magnitude. Basis changes between refactorizations are absorbed as
//! product-form eta matrices: `B_new = B * E_1 * ... * E_k`.
//!
//! Terminology: FTRAN solves `B x = b`, BTRAN solves `Bᵀ y = c`. FTRAN input
//! is indexed by row, output by basis position; BTRAN is the reverse.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NONE: u32 = u32::MAX;

/// A product-form eta: the basis column at `pos` was replaced by a column
/// whose FTRAN representation had `pivot` at `pos` and `others` elsewhere.
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    pivot: f64,
    others: Vec<(u32, f64)>,
}

/// Outcome of a factorization attempt.
#[derive(Debug, Clone)]
pub struct FactorizeReport {
    /// Basis positions whose columns were numerically singular and were
    /// replaced by the logical (slack) column of the reported row.
    pub replaced: Vec<(usize, usize)>,
    /// Fill-in: nonzeros in L plus U.
    pub fill_nnz: usize,
}

/// LU factors of a basis plus the eta file accumulated since the last
/// refactorization.
#[derive(Debug, Clone)]
pub struct LuFactors {
    m: usize,
    /// L column k: `(row, multiplier)` entries below the pivot, row-indexed.
    l_cols: Vec<Vec<(u32, f64)>>,
    /// U column k: `(position j, value)` entries with `j < k`.
    u_cols: Vec<Vec<(u32, f64)>>,
    u_diag: Vec<f64>,
    /// position -> original row pivoted at that elimination step.
    pivot_row: Vec<u32>,
    etas: Vec<Eta>,
}

impl LuFactors {
    /// Factorizes the basis given by `columns`: for each basis position, the
    /// sparse `(row, value)` pattern of the basis column. Numerically
    /// dependent columns are replaced by logical columns and reported.
    pub fn factorize(
        m: usize,
        columns: &mut dyn FnMut(usize) -> Vec<(u32, f64)>,
    ) -> (Self, FactorizeReport) {
        let mut lu = LuFactors {
            m,
            l_cols: vec![Vec::new(); m],
            u_cols: vec![Vec::new(); m],
            u_diag: vec![0.0; m],
            pivot_row: vec![NONE; m],
            etas: Vec::new(),
        };
        let mut pos_of_row = vec![NONE; m];
        // Dense work vector plus its nonzero pattern.
        let mut work = vec![0.0; m];
        let mut pattern: Vec<u32> = Vec::with_capacity(64);
        let mut defective: Vec<usize> = Vec::new();
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        let mut in_heap = vec![false; m];

        for k in 0..m {
            // Scatter column k.
            pattern.clear();
            for (r, v) in columns(k) {
                if v != 0.0 {
                    work[r as usize] = v;
                    pattern.push(r);
                }
            }
            // Lower solve in topological (position) order using a worklist:
            // apply every earlier pivot whose row carries a nonzero.
            heap.clear();
            for &r in &pattern {
                let p = pos_of_row[r as usize];
                if p != NONE && !in_heap[p as usize] {
                    in_heap[p as usize] = true;
                    heap.push(Reverse(p));
                }
            }
            while let Some(Reverse(j)) = heap.pop() {
                let j = j as usize;
                in_heap[j] = false;
                let pr = lu.pivot_row[j] as usize;
                let xj = work[pr];
                if xj == 0.0 {
                    continue;
                }
                lu.u_cols[k].push((j as u32, xj));
                work[pr] = 0.0;
                for &(r, l) in &lu.l_cols[j] {
                    let ru = r as usize;
                    if work[ru] == 0.0 {
                        pattern.push(r);
                    }
                    work[ru] -= l * xj;
                    let p = pos_of_row[ru];
                    if p != NONE && work[ru] != 0.0 && !in_heap[p as usize] {
                        in_heap[p as usize] = true;
                        heap.push(Reverse(p));
                    }
                }
            }
            // Pivot: largest remaining entry in an unpivoted row.
            let mut best_row = NONE;
            let mut best_abs = 1e-10;
            for &r in &pattern {
                let ru = r as usize;
                if pos_of_row[ru] == NONE {
                    let a = work[ru].abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = r;
                    }
                }
            }
            if best_row == NONE {
                // Column is dependent on earlier ones; patch later.
                defective.push(k);
                lu.u_cols[k].clear();
                for &r in &pattern {
                    work[r as usize] = 0.0;
                }
                continue;
            }
            let piv_row = best_row as usize;
            let piv = work[piv_row];
            lu.u_diag[k] = piv;
            lu.pivot_row[k] = best_row;
            pos_of_row[piv_row] = k as u32;
            for &r in &pattern {
                let ru = r as usize;
                let v = work[ru];
                work[ru] = 0.0;
                if ru != piv_row && v != 0.0 && pos_of_row[ru] == NONE {
                    lu.l_cols[k].push((r, v / piv));
                }
            }
        }

        // Repair defective columns: assign each one a leftover row as a
        // logical (identity) column.
        let mut replaced = Vec::new();
        if !defective.is_empty() {
            let mut free_rows: Vec<usize> = (0..m).filter(|&r| pos_of_row[r] == NONE).collect();
            for k in defective {
                // audit-allow(no-panic): counting argument — every defective column
                // leaves exactly one row unassigned, so `free_rows` has one entry
                // per iteration.
                let r = free_rows.pop().expect("one free row per defective column");
                lu.pivot_row[k] = r as u32;
                lu.u_diag[k] = 1.0;
                lu.u_cols[k].clear();
                lu.l_cols[k].clear();
                pos_of_row[r] = k as u32;
                replaced.push((k, r));
            }
        }
        let fill = lu.l_cols.iter().map(Vec::len).sum::<usize>()
            + lu.u_cols.iter().map(Vec::len).sum::<usize>()
            + m;
        (
            lu,
            FactorizeReport {
                replaced,
                fill_nnz: fill,
            },
        )
    }

    pub fn num_etas(&self) -> usize {
        self.etas.len()
    }

    pub fn dim(&self) -> usize {
        self.m
    }

    /// Records a basis change: position `pos` is replaced by a column whose
    /// FTRAN representation is the dense vector `direction` (position space).
    /// Returns false if the pivot element is numerically unusable.
    pub fn push_eta(&mut self, pos: usize, direction: &[f64]) -> bool {
        let pivot = direction[pos];
        if pivot.abs() < 1e-9 {
            return false;
        }
        let others: Vec<(u32, f64)> = direction
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        self.etas.push(Eta { pos, pivot, others });
        true
    }

    /// Solves `B x = b`. Input `b` is dense, indexed by row; the result is
    /// written back into `b`, indexed by basis position.
    pub fn ftran(&self, b: &mut [f64]) {
        debug_assert_eq!(b.len(), self.m);
        // Forward: y_k = b[pivot_row[k]]; eliminate below.
        let mut y = vec![0.0; self.m];
        for k in 0..self.m {
            let v = b[self.pivot_row[k] as usize];
            if v != 0.0 {
                y[k] = v;
                for &(r, l) in &self.l_cols[k] {
                    b[r as usize] -= l * v;
                }
            }
        }
        // Backward with U (column oriented).
        for k in (0..self.m).rev() {
            let z = y[k] / self.u_diag[k];
            y[k] = z;
            if z != 0.0 {
                for &(j, u) in &self.u_cols[k] {
                    y[j as usize] -= u * z;
                }
            }
        }
        // Product-form etas, oldest first.
        for eta in &self.etas {
            let xp = y[eta.pos] / eta.pivot;
            y[eta.pos] = xp;
            if xp != 0.0 {
                for &(i, d) in &eta.others {
                    y[i as usize] -= d * xp;
                }
            }
        }
        b.copy_from_slice(&y);
    }

    /// Solves `Bᵀ y = c`. Input `c` is dense, indexed by basis position; the
    /// result is written back into `c`, indexed by row.
    pub fn btran(&self, c: &mut [f64]) {
        debug_assert_eq!(c.len(), self.m);
        // Eta transposes, newest first.
        for eta in self.etas.iter().rev() {
            let mut dot = 0.0;
            for &(i, d) in &eta.others {
                dot += d * c[i as usize];
            }
            c[eta.pos] = (c[eta.pos] - dot) / eta.pivot;
        }
        // Solve Uᵀ w = c (forward in position space).
        let mut w = vec![0.0; self.m];
        for k in 0..self.m {
            let mut acc = c[k];
            for &(j, u) in &self.u_cols[k] {
                acc -= u * w[j as usize];
            }
            w[k] = acc / self.u_diag[k];
        }
        // Solve Lᵀ v = w (backward), scattering to row space.
        let mut v = vec![0.0; self.m];
        for k in (0..self.m).rev() {
            let mut acc = w[k];
            for &(r, l) in &self.l_cols[k] {
                acc -= l * v[r as usize];
            }
            v[self.pivot_row[k] as usize] = acc;
        }
        c.copy_from_slice(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense helper: multiply the basis given by columns with x.
    fn mat_vec(cols: &[Vec<(u32, f64)>], x: &[f64]) -> Vec<f64> {
        let m = x.len();
        let mut out = vec![0.0; m];
        for (k, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r as usize] += v * x[k];
            }
        }
        out
    }

    fn mat_t_vec(cols: &[Vec<(u32, f64)>], y: &[f64]) -> Vec<f64> {
        cols.iter()
            .map(|col| col.iter().map(|&(r, v)| v * y[r as usize]).sum())
            .collect()
    }

    fn factor(cols: &[Vec<(u32, f64)>]) -> (LuFactors, FactorizeReport) {
        let m = cols.len();
        let mut get = |k: usize| cols[k].clone();
        LuFactors::factorize(m, &mut get)
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn identity_ftran_btran() {
        let cols: Vec<Vec<(u32, f64)>> = (0..4).map(|k| vec![(k as u32, 1.0)]).collect();
        let (lu, rep) = factor(&cols);
        assert!(rep.replaced.is_empty());
        let mut b = vec![1.0, 2.0, 3.0, 4.0];
        lu.ftran(&mut b);
        assert_close(&b, &[1.0, 2.0, 3.0, 4.0], 1e-12);
        let mut c = vec![4.0, 3.0, 2.0, 1.0];
        lu.btran(&mut c);
        assert_close(&c, &[4.0, 3.0, 2.0, 1.0], 1e-12);
    }

    #[test]
    fn dense_3x3_solves() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] by columns.
        let cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let (lu, rep) = factor(&cols);
        assert!(rep.replaced.is_empty());
        let rhs = vec![1.0, -2.0, 3.5];
        let mut x = rhs.clone();
        lu.ftran(&mut x);
        assert_close(&mat_vec(&cols, &x), &rhs, 1e-10);

        let c = vec![0.5, 1.5, -1.0];
        let mut y = c.clone();
        lu.btran(&mut y);
        assert_close(&mat_t_vec(&cols, &y), &c, 1e-10);
    }

    #[test]
    fn permuted_identity_needs_pivoting() {
        // Columns are e2, e0, e1 — requires row permutation.
        let cols = vec![vec![(2, 1.0)], vec![(0, 1.0)], vec![(1, 1.0)]];
        let (lu, _) = factor(&cols);
        let rhs = vec![7.0, 8.0, 9.0];
        let mut x = rhs.clone();
        lu.ftran(&mut x);
        assert_close(&mat_vec(&cols, &x), &rhs, 1e-12);
    }

    #[test]
    fn singular_column_is_replaced() {
        // Third column is a copy of the first: dependent.
        let cols = vec![
            vec![(0, 1.0), (1, 1.0)],
            vec![(1, 1.0)],
            vec![(0, 1.0), (1, 1.0)],
        ];
        let (lu, rep) = factor(&cols);
        assert_eq!(rep.replaced.len(), 1);
        // After replacement the factors must still be a nonsingular operator:
        // solve with the patched basis (column 2 became logical e_r).
        let (k, r) = rep.replaced[0];
        let mut patched = cols.clone();
        patched[k] = vec![(r as u32, 1.0)];
        let rhs = vec![1.0, 2.0, 3.0];
        let mut x = rhs.clone();
        lu.ftran(&mut x);
        assert_close(&mat_vec(&patched, &x), &rhs, 1e-10);
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let cols = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(0, 1.0), (1, 3.0), (2, 1.0)],
            vec![(1, 1.0), (2, 4.0)],
        ];
        let (mut lu, _) = factor(&cols);
        // Replace basis position 1 with new column a = [1, 0, 2].
        let newcol = vec![(0u32, 1.0), (2u32, 2.0)];
        let mut d = vec![0.0; 3];
        for &(r, v) in &newcol {
            d[r as usize] = v;
        }
        lu.ftran(&mut d);
        assert!(lu.push_eta(1, &d));

        let mut updated = cols.clone();
        updated[1] = newcol;
        let rhs = vec![0.3, -1.2, 2.2];
        let mut x = rhs.clone();
        lu.ftran(&mut x);
        assert_close(&mat_vec(&updated, &x), &rhs, 1e-9);

        let c = vec![1.0, 2.0, 3.0];
        let mut y = c.clone();
        lu.btran(&mut y);
        assert_close(&mat_t_vec(&updated, &y), &c, 1e-9);
    }

    #[test]
    fn random_dense_matrices_round_trip() {
        // Deterministic pseudo-random matrices; verify FTRAN/BTRAN against
        // the definition.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) * 4.0 - 2.0
        };
        for m in [1usize, 2, 5, 12, 30] {
            let cols: Vec<Vec<(u32, f64)>> = (0..m)
                .map(|_| {
                    (0..m)
                        .filter_map(|r| {
                            let v = next();
                            // ~60% sparsity
                            if v.abs() < 0.8 {
                                None
                            } else {
                                Some((r as u32, v))
                            }
                        })
                        .collect()
                })
                .collect();
            let (lu, rep) = factor(&cols);
            let mut patched = cols.clone();
            for &(k, r) in &rep.replaced {
                patched[k] = vec![(r as u32, 1.0)];
            }
            let rhs: Vec<f64> = (0..m).map(|_| next()).collect();
            let mut x = rhs.clone();
            lu.ftran(&mut x);
            assert_close(&mat_vec(&patched, &x), &rhs, 1e-7);
            let mut y = rhs.clone();
            lu.btran(&mut y);
            assert_close(&mat_t_vec(&patched, &y), &rhs, 1e-7);
        }
    }
}
