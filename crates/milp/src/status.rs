//! Solve outcome classification.

use std::fmt;

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An incumbent was found and proven optimal within the gap target.
    Optimal,
    /// An incumbent was found but the search stopped on a limit; the
    /// reported gap bounds its distance from the optimum.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A limit was hit before any incumbent was found.
    NoSolutionFound,
}

impl SolveStatus {
    /// Whether a usable incumbent exists.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Why the branch-and-bound search stopped. Orthogonal to [`SolveStatus`]:
/// the status says what was (or was not) found, the stop reason says which
/// budget — if any — cut the search short. Consumers use it to classify
/// "no plan found" outcomes precisely (a node budget is a *resource* limit,
/// deterministic under CPU contention; a wall-clock deadline is a timeout)
/// instead of guessing from the configured options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The search ran to its natural end (optimum proven, gap target
    /// reached, or infeasibility/unboundedness established). Always the
    /// reason when [`SolveStatus::Optimal`] is reported.
    #[default]
    Finished,
    /// The wall-clock deadline ([`crate::SolverOptions::time_limit`]) fired.
    TimeLimit,
    /// The node budget ([`crate::SolverOptions::node_limit`]) was exhausted
    /// — a deterministic stop: the same model, options, and seed exhaust
    /// the budget at the same tree state regardless of machine load.
    NodeLimit,
    /// Numerically stalled subtrees were parked and not pruned, leaving the
    /// search inconclusive without any configured budget firing.
    Stalled,
}

/// Per-solve search observability counters, carried on
/// [`crate::branch_bound::SearchOutcome`] and [`crate::MipResult`].
/// Consumers aggregate them across solves to understand where search effort
/// went, how much of it was wasted speculation, and whether a solve was
/// root-LP-bound (one huge root simplex) or search-bound (many nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Branch-and-bound nodes whose LP relaxation was solved (mirrors the
    /// result's `nodes` field; kept here so the stats block is
    /// self-contained).
    pub nodes_expanded: u64,
    /// Worker threads the search ran with (`1` for the sequential path).
    pub workers_used: usize,
    /// Nodes expanded whose justifying bound (the parent LP objective the
    /// node was opened under) already exceeded the final optimum — work a
    /// clairvoyant search would have pruned. In a parallel search this is
    /// the natural measure of speculative overhead: workers expand
    /// best-bound-at-the-time nodes that a later incumbent retroactively
    /// proves useless. `0` whenever no incumbent was found.
    pub speculative_nodes: u64,
    /// Simplex iterations spent on the *root* relaxation's LP solve
    /// (including a cold retry when the warm verdict needed verification).
    /// A solve where this dominates `total_lp_iterations` is root-LP-bound:
    /// node-level parallelism cannot help it, a faster simplex (or
    /// decomposition) can. `0` when the root was never solved (presolve
    /// infeasibility, zero node budget).
    pub root_lp_iterations: u64,
    /// Simplex iterations across every LP solved during the search: warm
    /// start, node relaxations, and heuristic dives alike. Together with
    /// `nodes_expanded` this separates "many cheap LPs" from "few enormous
    /// ones".
    pub total_lp_iterations: u64,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Finished => "finished",
            StopReason::TimeLimit => "time limit",
            StopReason::NodeLimit => "node limit",
            StopReason::Stalled => "numerically stalled",
        };
        f.write_str(s)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible (limit reached)",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::NoSolutionFound => "no solution found",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::NoSolutionFound.has_solution());
    }

    #[test]
    fn display() {
        assert_eq!(SolveStatus::Optimal.to_string(), "optimal");
    }
}
