//! Solve outcome classification.

use std::fmt;

/// Final status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An incumbent was found and proven optimal within the gap target.
    Optimal,
    /// An incumbent was found but the search stopped on a limit; the
    /// reported gap bounds its distance from the optimum.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A limit was hit before any incumbent was found.
    NoSolutionFound,
}

impl SolveStatus {
    /// Whether a usable incumbent exists.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible (limit reached)",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::NoSolutionFound => "no solution found",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::NoSolutionFound.has_solution());
    }

    #[test]
    fn display() {
        assert_eq!(SolveStatus::Optimal.to_string(), "optimal");
    }
}
