//! Bounded-variable primal simplex with composite phase 1.
//!
//! The engine works on the computational form of [`crate::lp::LpProblem`]:
//! all columns (structural and logical) are bounded variables, the
//! constraint system is `A x + s = 0`. Phase 1 minimizes the sum of primal
//! infeasibilities of the basic variables (no artificial variables are
//! introduced), which makes warm starts after branch-and-bound bound changes
//! cheap: a handful of phase-1 iterations repair the basis.
//!
//! Numerical safeguards: sparse LU with partial pivoting, product-form
//! updates with periodic refactorization, Harris-style two-pass ratio test,
//! relative dual tolerances, and a Bland's-rule fallback under prolonged
//! degeneracy.

use std::time::Instant;

use crate::lp::LpProblem;
use crate::lu::LuFactors;

/// Basis membership of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarStatus {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic free variable, resting at zero.
    Free,
}

/// A saved basis: per-column status. Row assignments are reconstructed on
/// load.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSnapshot {
    pub status: Vec<VarStatus>,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
    TimeLimit,
}

/// Result summary of one simplex run.
#[derive(Debug, Clone)]
pub struct LpResult {
    pub status: LpStatus,
    /// Minimization-space objective (without offset); meaningful for
    /// `Optimal` and as a best-effort value otherwise.
    pub objective: f64,
    pub iterations: u64,
}

/// Resource limits for one solve call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplexLimits {
    pub max_iterations: Option<u64>,
    pub deadline: Option<Instant>,
}

const FEAS_TOL: f64 = 1e-7;
const DUAL_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-8;
const REFACTOR_INTERVAL: usize = 100;
/// Consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_LIMIT: u64 = 400;

fn feas_tol(bound: f64) -> f64 {
    FEAS_TOL * (1.0 + bound.abs())
}

/// The simplex engine. Owns working bounds (so branch-and-bound can tighten
/// them without touching the shared [`LpProblem`]) and the current basis.
pub struct Simplex<'a> {
    lp: &'a LpProblem,
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    status: Vec<VarStatus>,
    /// basis[i] = column occupying basis position i.
    basis: Vec<usize>,
    x: Vec<f64>,
    lu: Option<LuFactors>,
    iterations_total: u64,
    /// Active cost perturbation (anti-cycling), sparse over columns.
    perturbation: Option<Vec<f64>>,
}

impl<'a> Simplex<'a> {
    pub fn new(lp: &'a LpProblem) -> Self {
        let ncols = lp.num_cols();
        let m = lp.num_rows;
        let mut s = Simplex {
            lp,
            lb: lp.lb.clone(),
            ub: lp.ub.clone(),
            status: vec![VarStatus::AtLower; ncols],
            basis: Vec::with_capacity(m),
            x: vec![0.0; ncols],
            lu: None,
            iterations_total: 0,
            perturbation: None,
        };
        s.install_slack_basis();
        s
    }

    /// Resets to the all-logical basis.
    pub fn install_slack_basis(&mut self) {
        let n = self.lp.num_structural;
        let m = self.lp.num_rows;
        self.basis.clear();
        for j in 0..n {
            self.status[j] = self.nonbasic_resting_status(j);
        }
        for i in 0..m {
            self.status[n + i] = VarStatus::Basic;
            self.basis.push(n + i);
        }
        self.lu = None;
    }

    fn nonbasic_resting_status(&self, j: usize) -> VarStatus {
        let (l, u) = (self.lb[j], self.ub[j]);
        if l.is_finite() {
            VarStatus::AtLower
        } else if u.is_finite() {
            VarStatus::AtUpper
        } else {
            VarStatus::Free
        }
    }

    /// Overrides the bounds of a column (used by branch and bound). The
    /// caller must re-solve afterwards.
    pub fn set_bounds(&mut self, col: usize, lb: f64, ub: f64) {
        self.lb[col] = lb;
        self.ub[col] = ub;
    }

    /// Restores bounds from the underlying problem.
    pub fn reset_bounds(&mut self) {
        self.lb.copy_from_slice(&self.lp.lb);
        self.ub.copy_from_slice(&self.lp.ub);
    }

    pub fn basis_snapshot(&self) -> BasisSnapshot {
        BasisSnapshot {
            status: self.status.clone(),
        }
    }

    /// Loads a basis snapshot. Falls back to the slack basis if the snapshot
    /// does not contain exactly `m` basic columns.
    pub fn load_basis(&mut self, snap: &BasisSnapshot) {
        let m = self.lp.num_rows;
        if snap.status.len() != self.status.len()
            || snap
                .status
                .iter()
                .filter(|s| **s == VarStatus::Basic)
                .count()
                != m
        {
            self.install_slack_basis();
            return;
        }
        self.status.copy_from_slice(&snap.status);
        self.basis.clear();
        for (j, s) in self.status.iter().enumerate() {
            if *s == VarStatus::Basic {
                self.basis.push(j);
            }
        }
        self.lu = None;
    }

    /// Current column values (structural prefix is the model solution).
    pub fn values(&self) -> &[f64] {
        &self.x
    }

    /// Minimization-space objective of the current point (without offset).
    pub fn objective(&self) -> f64 {
        let mut acc = 0.0;
        for (j, &c) in self.lp.obj.iter().enumerate() {
            if c != 0.0 {
                acc += c * self.x[j];
            }
        }
        acc
    }

    pub fn iterations_total(&self) -> u64 {
        self.iterations_total
    }

    /// Objective coefficient of a column including any active anti-cycling
    /// perturbation.
    fn cost(&self, j: usize) -> f64 {
        match &self.perturbation {
            Some(p) => self.lp.obj[j] + p[j],
            None => self.lp.obj[j],
        }
    }

    /// Objective of the current point under the working (possibly
    /// perturbed) costs — the quantity the iteration actually decreases.
    fn working_objective(&self) -> f64 {
        match &self.perturbation {
            Some(p) => {
                let mut acc = 0.0;
                for j in 0..self.lp.num_cols() {
                    let c = self.lp.obj[j] + p[j];
                    if c != 0.0 {
                        acc += c * self.x[j];
                    }
                }
                acc
            }
            None => self.objective(),
        }
    }

    fn snap_nonbasic_values(&mut self) {
        for j in 0..self.lp.num_cols() {
            match self.status[j] {
                VarStatus::AtLower => {
                    if self.lb[j].is_finite() {
                        self.x[j] = self.lb[j];
                    } else {
                        self.status[j] = self.nonbasic_resting_status(j);
                        self.x[j] = match self.status[j] {
                            VarStatus::AtUpper => self.ub[j],
                            _ => 0.0,
                        };
                    }
                }
                VarStatus::AtUpper => {
                    if self.ub[j].is_finite() {
                        self.x[j] = self.ub[j];
                    } else {
                        self.status[j] = self.nonbasic_resting_status(j);
                        self.x[j] = match self.status[j] {
                            VarStatus::AtLower => self.lb[j],
                            _ => 0.0,
                        };
                    }
                }
                VarStatus::Free => self.x[j] = 0.0,
                VarStatus::Basic => {}
            }
        }
    }

    /// The current basis factorization. Every caller runs strictly after
    /// a `factorize()` on the solve path (`lu` is only `None` between
    /// basis invalidation and the next solve), so the accessor centralizes
    /// that invariant instead of an `unwrap` per use site.
    fn factors(&self) -> &LuFactors {
        // audit-allow(no-panic): single audited choke point — `lu` is
        // re-established at solve entry before any read reaches this.
        self.lu
            .as_ref()
            .expect("basis factorized on the solve path")
    }

    /// Mutable form of [`factors`](Self::factors), for eta updates.
    fn factors_mut(&mut self) -> &mut LuFactors {
        // audit-allow(no-panic): see `factors` — same invariant.
        self.lu
            .as_mut()
            .expect("basis factorized on the solve path")
    }

    fn factorize(&mut self) {
        let lp = self.lp;
        let basis = self.basis.clone();
        let mut getter = |k: usize| lp.column_pattern(basis[k]);
        let (lu, report) = LuFactors::factorize(lp.num_rows, &mut getter);
        self.lu = Some(lu);
        // Defective columns were replaced by logicals; mirror that in the
        // basis bookkeeping.
        for &(pos, row) in &report.replaced {
            let kicked = self.basis[pos];
            let logical = self.lp.num_structural + row;
            if kicked == logical {
                continue;
            }
            self.status[kicked] = self.nonbasic_resting_status(kicked);
            // If the logical was nonbasic it now becomes basic; if it was
            // "basic" at another position the factorization would have
            // pivoted its row, so this cannot occur.
            self.status[logical] = VarStatus::Basic;
            self.basis[pos] = logical;
        }
    }

    /// Recomputes basic variable values from the nonbasic assignment.
    fn compute_basics(&mut self) {
        self.snap_nonbasic_values();
        let m = self.lp.num_rows;
        let mut rhs = vec![0.0; m];
        for j in 0..self.lp.num_cols() {
            if self.status[j] != VarStatus::Basic && self.x[j] != 0.0 {
                self.lp.column_axpy(j, -self.x[j], &mut rhs);
            }
        }
        self.factors().ftran(&mut rhs);
        for (i, &col) in self.basis.iter().enumerate() {
            self.x[col] = rhs[i];
        }
    }

    /// Runs the simplex method to completion or a limit.
    pub fn solve(&mut self, limits: &SimplexLimits) -> LpResult {
        let m = self.lp.num_rows;
        let ncols = self.lp.num_cols();
        let max_iter = limits
            .max_iterations
            .unwrap_or_else(|| 2_000 + 40 * (m as u64 + ncols as u64));

        // Reuse existing factors when only bounds changed since the last
        // solve (the common warm-start path in branch and bound).
        if self.lu.is_none() {
            self.factorize();
        }
        self.compute_basics();

        self.perturbation = None;
        let trace = std::env::var_os("MILP_TRACE").is_some();
        let mut iterations = 0u64;
        let mut degen_streak = 0u64;
        let mut etas_since_refactor = 0usize;
        // Incremental value updates drift numerically; every termination
        // verdict is confirmed against freshly refactorized basic values
        // before it is returned.
        let mut confirmed = false;
        // Stall detection on actual progress (micro-steps from the Harris
        // relaxation evade the pure step-length degeneracy counter): switch
        // to Bland's rule after STALL_BLAND non-improving iterations and
        // give up (IterationLimit) after STALL_ABORT.
        const STALL_BLAND: u64 = 200;
        /// Non-improving iterations before cost perturbation engages.
        const STALL_PERTURB: u64 = 400;
        // Last-resort abort: scaled to the problem size, since large
        // degenerate LPs legitimately crawl through long zero-step
        // stretches between improvements.
        let stall_abort: u64 = 5_000 + 4 * m as u64;
        let mut stall_counter = 0u64;
        let mut best_progress = f64::INFINITY; // phase1: violation; phase2: objective
        let mut last_phase1 = false;

        loop {
            if iterations >= max_iter {
                return self.finish(LpStatus::IterationLimit, iterations);
            }
            if iterations.is_multiple_of(64) {
                if let Some(deadline) = limits.deadline {
                    if milpjoin_shim::time::now() >= deadline {
                        return self.finish(LpStatus::TimeLimit, iterations);
                    }
                }
            }
            if etas_since_refactor >= REFACTOR_INTERVAL {
                self.factorize();
                self.compute_basics();
                etas_since_refactor = 0;
            }

            // Phase detection: total violation of basic bounds (violations
            // below the per-bound tolerance are ignored so that phase 1
            // cannot tread water on sub-tolerance noise).
            let mut total_violation = 0.0;
            for &col in &self.basis {
                let v = self.x[col];
                if v < self.lb[col] - feas_tol(self.lb[col]) {
                    total_violation += self.lb[col] - v;
                } else if v > self.ub[col] + feas_tol(self.ub[col]) {
                    total_violation += v - self.ub[col];
                }
            }
            let phase1 = total_violation > 1e-6;

            // Progress accounting for stall detection (scales differ per
            // phase, so reset on phase changes).
            if phase1 != last_phase1 {
                best_progress = f64::INFINITY;
                last_phase1 = phase1;
            }
            let progress = if phase1 {
                total_violation
            } else {
                self.working_objective()
            };
            if progress < best_progress - 1e-13 * (1.0 + best_progress.abs()) {
                best_progress = progress;
                stall_counter = 0;
            } else {
                stall_counter += 1;
            }
            if stall_counter >= stall_abort {
                return self.finish(LpStatus::IterationLimit, iterations);
            }
            let engage_perturbation =
                stall_counter >= STALL_PERTURB && self.perturbation.is_none() && !phase1;
            if engage_perturbation {
                // Deterministic tiny cost perturbation: breaks the exact
                // dual ties that tolerance-based Bland's rule cannot.
                let pert: Vec<f64> = (0..ncols)
                    .map(|j| {
                        let h = (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                        1e-7 * (1.0 + self.lp.obj[j].abs()) * (0.5 + u)
                    })
                    .collect();
                self.perturbation = Some(pert);
                // Progress is now measured against the perturbed objective.
                best_progress = f64::INFINITY;
                stall_counter = 0;
            }

            // Dual values for the phase objective.
            let mut cb = vec![0.0; m];
            for (i, &col) in self.basis.iter().enumerate() {
                cb[i] = if phase1 {
                    let v = self.x[col];
                    if v < self.lb[col] - feas_tol(self.lb[col]) {
                        -1.0
                    } else if v > self.ub[col] + feas_tol(self.ub[col]) {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    self.cost(col)
                };
            }
            self.factors().btran(&mut cb);
            let y = cb; // now indexed by row

            // Pricing: Dantzig rule on scale-normalized reduced costs, or
            // Bland's rule (first eligible index) under prolonged
            // degeneracy.
            let use_bland = degen_streak > DEGEN_LIMIT || stall_counter > STALL_BLAND;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, score, direction)
            for j in 0..ncols {
                let st = self.status[j];
                if st == VarStatus::Basic {
                    continue;
                }
                // Fixed columns (equality slacks, fixed variables) cannot
                // move and must never enter.
                if self.ub[j] - self.lb[j] <= 0.0 {
                    continue;
                }
                let cj = if phase1 { 0.0 } else { self.cost(j) };
                let d = cj - self.lp.column_dot(j, &y);
                // The matrix is equilibration-scaled, so an absolute dual
                // tolerance plus a small noise floor proportional to the
                // dot-product magnitude is appropriate. Phase 1 uses a much
                // tighter tolerance: a repair direction may carry a tiny
                // reduced cost when fixing the violation needs a long walk,
                // and missing it turns a feasible LP into a false
                // "infeasible".
                let scale = 1.0 + cj.abs() + self.lp.column_abs_dot(j, &y);
                let tol = if phase1 {
                    1e-10 + 1e-13 * scale
                } else {
                    DUAL_TOL + 1e-12 * scale
                };
                let dir = match st {
                    VarStatus::AtLower | VarStatus::Free if d < -tol => 1.0,
                    VarStatus::AtUpper | VarStatus::Free if d > tol => -1.0,
                    _ => continue,
                };
                if use_bland {
                    entering = Some((j, d.abs(), dir));
                    break;
                }
                let score = d.abs() / scale.sqrt();
                match entering {
                    Some((_, best, _)) if score <= best => {}
                    _ => entering = Some((j, score, dir)),
                }
            }

            let Some((q, _, dir)) = entering else {
                // Optimal under perturbed costs: drop the perturbation and
                // re-optimize the true objective from this (usually
                // optimal) basis.
                if !phase1 && self.perturbation.is_some() {
                    self.perturbation = None;
                    best_progress = f64::INFINITY;
                    stall_counter = 0;
                    degen_streak = 0;
                    confirmed = false;
                    iterations += 1;
                    continue;
                }
                // Phase optimal — but only trust values computed from a
                // fresh factorization (incremental updates drift).
                if !confirmed {
                    self.factorize();
                    self.compute_basics();
                    etas_since_refactor = 0;
                    confirmed = true;
                    iterations += 1;
                    continue;
                }
                if phase1 {
                    // Confirmed phase-1 optimum with positive violation.
                    return self.finish(LpStatus::Infeasible, iterations);
                }
                return self.finish(LpStatus::Optimal, iterations);
            };
            confirmed = false;

            // Entering direction d = B^-1 a_q.
            let mut dvec = vec![0.0; m];
            self.lp.column_axpy(q, 1.0, &mut dvec);
            self.factors().ftran(&mut dvec);

            // Ratio test (two-pass Harris style; strict Bland variant under
            // prolonged degeneracy).
            let (step, leaving) = self.ratio_test(q, dir, &dvec, phase1, use_bland);

            if trace {
                eprintln!(
                    "it={iterations} ph={} q={q} dir={dir} step={step:.3e} out={leaving:?} obj={:.9} bland={use_bland}",
                    if phase1 { 1 } else { 2 },
                    self.objective()
                );
            }

            match leaving {
                RatioOutcome::Unbounded => {
                    if phase1 {
                        // Should not happen: infeasibility is bounded below.
                        return self.finish(LpStatus::Infeasible, iterations);
                    }
                    return self.finish(LpStatus::Unbounded, iterations);
                }
                RatioOutcome::BoundFlip => {
                    // Entering moves to its opposite bound; basis unchanged.
                    let t = step;
                    self.apply_step(q, dir, t, &dvec);
                    self.status[q] = match self.status[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        s => s,
                    };
                    self.x[q] = match self.status[q] {
                        VarStatus::AtLower => self.lb[q],
                        VarStatus::AtUpper => self.ub[q],
                        _ => self.x[q],
                    };
                }
                RatioOutcome::Leaving { row, to_upper } => {
                    let t = step;
                    self.apply_step(q, dir, t, &dvec);
                    let out_col = self.basis[row];
                    self.status[out_col] = if to_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    self.x[out_col] = if to_upper {
                        self.ub[out_col]
                    } else {
                        self.lb[out_col]
                    };
                    self.status[q] = VarStatus::Basic;
                    self.basis[row] = q;
                    let ok = self.factors_mut().push_eta(row, &dvec);
                    if ok {
                        etas_since_refactor += 1;
                    } else {
                        self.factorize();
                        self.compute_basics();
                        etas_since_refactor = 0;
                    }
                }
            }

            if step > 1e-10 {
                degen_streak = 0;
            } else {
                degen_streak += 1;
            }
            iterations += 1;
        }
    }

    /// Moves entering `q` by `dir * t` and updates basics along `dvec`.
    fn apply_step(&mut self, q: usize, dir: f64, t: f64, dvec: &[f64]) {
        if t == 0.0 {
            return;
        }
        self.x[q] += dir * t;
        for (i, &di) in dvec.iter().enumerate() {
            if di != 0.0 {
                let col = self.basis[i];
                self.x[col] -= dir * t * di;
            }
        }
    }

    fn ratio_test(
        &self,
        q: usize,
        dir: f64,
        dvec: &[f64],
        phase1: bool,
        bland: bool,
    ) -> (f64, RatioOutcome) {
        // The entering variable's own range provides a bound-flip candidate.
        let own_range = self.ub[q] - self.lb[q];
        let mut limit = if own_range.is_finite() {
            own_range
        } else {
            f64::INFINITY
        };
        let mut limit_is_flip = own_range.is_finite();

        // Pass 1: step limit. Harris relaxation is disabled in Bland mode so
        // that the anti-cycling argument applies to exact ratios.
        for (i, &di) in dvec.iter().enumerate() {
            if di.abs() <= PIVOT_TOL {
                continue;
            }
            let col = self.basis[i];
            let delta = -dir * di; // movement of basic per unit step
            let xb = self.x[col];
            let (l, u) = (self.lb[col], self.ub[col]);
            let target = self.breakpoint(xb, l, u, delta, phase1);
            let Some(target) = target else { continue };
            let slack = if bland { 0.0 } else { feas_tol(target) };
            let relaxed = target + slack * delta.signum();
            let ratio = ((relaxed - xb) / delta).max(0.0);
            if ratio < limit {
                limit = ratio;
                limit_is_flip = false;
            }
        }

        if limit.is_infinite() {
            return (0.0, RatioOutcome::Unbounded);
        }

        // Pass 2: among blocking rows within the limit, choose the largest
        // pivot magnitude (or the smallest variable index under Bland's
        // rule); step to the chosen row's exact bound.
        let mut best: Option<(usize, f64, f64, bool)> = None; // (row, |pivot| or -col, exact ratio, to_upper)
        for (i, &di) in dvec.iter().enumerate() {
            if di.abs() <= PIVOT_TOL {
                continue;
            }
            let col = self.basis[i];
            let delta = -dir * di;
            let xb = self.x[col];
            let (l, u) = (self.lb[col], self.ub[col]);
            let Some(target) = self.breakpoint(xb, l, u, delta, phase1) else {
                continue;
            };
            let exact = ((target - xb) / delta).max(0.0);
            if exact <= limit + 1e-15 {
                // The leaving variable rests at whichever bound blocked.
                let to_upper = target == u && l != u;
                // Bland: prefer the smallest column index; otherwise the
                // largest pivot for numerical stability.
                let score = if bland { -(col as f64) } else { di.abs() };
                match best {
                    Some((_, bs, _, _)) if score <= bs => {}
                    _ => best = Some((i, score, exact, to_upper)),
                }
            }
        }

        match best {
            Some((row, _, exact, to_upper)) => (exact, RatioOutcome::Leaving { row, to_upper }),
            None if limit_is_flip => (own_range, RatioOutcome::BoundFlip),
            None => {
                // Relaxation artifacts: fall back to the entering variable's
                // own range as a flip if possible, otherwise declare
                // unbounded.
                if own_range.is_finite() {
                    (own_range, RatioOutcome::BoundFlip)
                } else {
                    (0.0, RatioOutcome::Unbounded)
                }
            }
        }
    }

    /// The bound at which a basic variable blocks, given its movement
    /// direction, or `None` if it never blocks.
    fn breakpoint(&self, xb: f64, l: f64, u: f64, delta: f64, phase1: bool) -> Option<f64> {
        let below = xb < l - feas_tol(l);
        let above = xb > u + feas_tol(u);
        if delta > 0.0 {
            if below {
                // Infeasible below, moving up: becomes feasible at l.
                Some(l)
            } else if above {
                // Above the upper bound, moving up: no gradient change.
                if phase1 {
                    None
                } else {
                    Some(u)
                }
            } else if u.is_finite() {
                Some(u)
            } else {
                None
            }
        } else if above {
            Some(u)
        } else if below {
            if phase1 {
                None
            } else {
                Some(l)
            }
        } else if l.is_finite() {
            Some(l)
        } else {
            None
        }
    }

    fn finish(&mut self, status: LpStatus, iterations: u64) -> LpResult {
        self.iterations_total += iterations;
        LpResult {
            status,
            objective: self.objective(),
            iterations,
        }
    }

    /// Columns violating their bounds, with violation amounts (diagnostics).
    pub fn infeasible_columns(&self) -> Vec<(usize, f64)> {
        (0..self.lp.num_cols())
            .filter_map(|j| {
                let v = self.x[j];
                let viol = (self.lb[j] - v).max(0.0) + (v - self.ub[j]).max(0.0);
                (viol > 0.0).then_some((j, viol))
            })
            .collect()
    }

    /// Primal infeasibility of the current point (for diagnostics).
    pub fn primal_infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for j in 0..self.lp.num_cols() {
            let v = self.x[j];
            total += (self.lb[j] - v).max(0.0) + (v - self.ub[j]).max(0.0);
        }
        total
    }

    /// Access to the working bounds (for heuristics).
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lb, &self.ub)
    }
}

#[derive(Debug, Clone, Copy)]
enum RatioOutcome {
    Leaving { row: usize, to_upper: bool },
    BoundFlip,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::LpProblem;
    use crate::model::{Model, Sense};

    fn solve_model(m: &Model) -> (LpResult, Vec<f64>, LpProblem) {
        let lp = LpProblem::from_model(m);
        let mut sx = Simplex::new(&lp);
        let res = sx.solve(&SimplexLimits::default());
        let vals = sx.values()[..lp.num_structural].to_vec();
        (res, vals, lp)
    }

    #[test]
    fn simple_2d_lp() {
        // max x + y s.t. x + 2y <= 4, 3x + y <= 6, x,y >= 0
        // optimum at x=1.6, y=1.2, obj=2.8
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, f64::INFINITY, "x");
        let y = m.add_continuous(0.0, f64::INFINITY, "y");
        m.add_le(x + y * 2.0, 4.0, "c0");
        m.add_le(x * 3.0 + y, 6.0, "c1");
        m.set_objective(x + y, Sense::Maximize);
        let (res, vals, lp) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((lp.user_objective(res.objective) - 2.8).abs() < 1e-6);
        assert!((vals[0] - 1.6).abs() < 1e-6);
        assert!((vals[1] - 1.2).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 2, x - y = 0 -> x = y = 1
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        let y = m.add_continuous(0.0, 10.0, "y");
        m.add_eq(x + y, 2.0, "c0");
        m.add_eq(x - y, 0.0, "c1");
        m.set_objective(x + y, Sense::Minimize);
        let (res, vals, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((vals[0] - 1.0).abs() < 1e-6);
        assert!((vals[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 1.0, "x");
        m.add_ge(x.into(), 2.0, "c0");
        m.set_objective(x.into(), Sense::Minimize);
        let (res, _, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, f64::INFINITY, "x");
        m.set_objective(x.into(), Sense::Maximize);
        let (res, _, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 -> x = -5
        let mut m = Model::new("t");
        let x = m.add_continuous(-5.0, 5.0, "x");
        m.set_objective(x.into(), Sense::Minimize);
        let (res, vals, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((vals[0] + 5.0).abs() < 1e-8);
    }

    #[test]
    fn free_variable_lp() {
        // min x + 2y, x free, y in [0, 3], x + y >= 1, x >= -4 via constraint
        let mut m = Model::new("t");
        let x = m.add_continuous(f64::NEG_INFINITY, f64::INFINITY, "x");
        let y = m.add_continuous(0.0, 3.0, "y");
        m.add_ge(x + y, 1.0, "c0");
        m.add_ge(x.into(), -4.0, "c1");
        m.set_objective(x + y * 2.0, Sense::Minimize);
        let (res, vals, lp) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        // obj = x + 2y = (x + y) + y >= 1 + y, minimized at y = 0, x = 1.
        assert!((lp.user_objective(res.objective) - 1.0).abs() < 1e-6);
        assert!((vals[0] - 1.0).abs() < 1e-6);
        assert!(vals[1].abs() < 1e-6);
    }

    #[test]
    fn ranged_constraint() {
        // max x s.t. 1 <= x <= 3 (as range row), x in [0, 10]
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        m.add_range(1.0, LinExprOf(x), 3.0, "r");
        m.set_objective(x.into(), Sense::Maximize);
        let (res, vals, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((vals[0] - 3.0).abs() < 1e-7);
    }

    #[allow(non_snake_case)]
    fn LinExprOf(v: crate::model::Var) -> crate::expr::LinExpr {
        v.into()
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, "x");
        let y = m.add_continuous(0.0, 10.0, "y");
        for i in 0..20 {
            let a = 1.0 + (i as f64) * 0.1;
            m.add_ge(x * a + y, 0.0, format!("c{i}"));
        }
        m.add_le(x + y, 5.0, "cap");
        m.set_objective(x + y, Sense::Maximize);
        let (res, _, lp) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((lp.user_objective(res.objective) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_after_bound_change() {
        // Solve, tighten a bound, re-solve from the old basis.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 4.0, "x");
        let y = m.add_continuous(0.0, 4.0, "y");
        m.add_le(x + y, 6.0, "c0");
        m.set_objective(x + y, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let mut sx = Simplex::new(&lp);
        let r1 = sx.solve(&SimplexLimits::default());
        assert_eq!(r1.status, LpStatus::Optimal);
        assert!((r1.objective - (-6.0)).abs() < 1e-6); // min space: -(x+y)

        sx.set_bounds(0, 0.0, 1.0); // x <= 1
        let r2 = sx.solve(&SimplexLimits::default());
        assert_eq!(r2.status, LpStatus::Optimal);
        assert!((r2.objective - (-5.0)).abs() < 1e-6);
        // The warm-started solve should be quick.
        assert!(
            r2.iterations <= 10,
            "warm start took {} iterations",
            r2.iterations
        );
    }

    #[test]
    fn many_bound_flips() {
        // Boxed variables with no constraints: optimum is a pure sequence of
        // bound flips.
        let mut m = Model::new("t");
        let mut obj = crate::expr::LinExpr::new();
        for i in 0..8 {
            let v = m.add_continuous(-1.0, 1.0, format!("v{i}"));
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            obj += v * sign;
        }
        m.set_objective(obj, Sense::Minimize);
        let (res, vals, _) = solve_model(&m);
        assert_eq!(res.status, LpStatus::Optimal);
        assert!((res.objective + 8.0).abs() < 1e-7);
        for (i, v) in vals.iter().enumerate() {
            let expect = if i % 2 == 0 { -1.0 } else { 1.0 };
            assert!((v - expect).abs() < 1e-8);
        }
    }
}
