//! Computational form of an LP: the shape consumed by the simplex engine.
//!
//! A [`Model`] is translated into
//!
//! ```text
//! minimize  c' x
//! s.t.      A x + s = 0,   with  s_i in [-hi_i, -lo_i]
//!           lb <= x <= ub
//! ```
//!
//! where one *logical* variable `s_i` is appended per row. Every column
//! (structural or logical) is simply a bounded variable; the initial basis of
//! all logicals is the identity matrix.

use crate::model::{Model, Sense, VarType};
use crate::sparse::CscMatrix;

/// An LP/MILP in computational form.
///
/// The matrix, bounds, and objective stored here are **equilibration
/// scaled**: every row is multiplied by a power of two bringing its largest
/// coefficient near 1, and every *continuous* column is scaled likewise
/// (integer columns keep scale 1 so integrality tests stay meaningful).
/// Scaling keeps the simplex tolerances meaningful when the source model
/// mixes coefficients across many orders of magnitude — which the join
/// ordering encodings do (log-cardinality rows vs. raw-cardinality rows).
/// Objective *values* are invariant under this scaling; variable values are
/// mapped back through [`LpProblem::unscale_values`].
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural (model) variables `n`.
    pub num_structural: usize,
    /// Number of rows `m`.
    pub num_rows: usize,
    /// Structural columns of `A` (m x n), scaled.
    pub a: CscMatrix,
    /// Row-activity lower bounds (`lo_i`), scaled (used by the feasibility
    /// verifier, which works in scaled space).
    pub row_lo: Vec<f64>,
    /// Row-activity upper bounds (`hi_i`), scaled.
    pub row_hi: Vec<f64>,
    /// Column lower bounds, length `n + m` (structural then logical),
    /// scaled.
    pub lb: Vec<f64>,
    /// Column upper bounds, length `n + m`, scaled.
    pub ub: Vec<f64>,
    /// Objective coefficients, length `n + m` (zero on logicals), always
    /// minimization oriented, scaled (objective values are unchanged).
    pub obj: Vec<f64>,
    /// Constant added to reported objective values.
    pub obj_offset: f64,
    /// Integrality flags for structural variables.
    pub integer: Vec<bool>,
    /// True if the original model maximized (reported objectives are negated
    /// back by the caller).
    pub flipped: bool,
    /// Per-structural-column scale factor: `x_model = x_scaled * col_scale`.
    pub col_scale: Vec<f64>,
}

impl LpProblem {
    /// Builds the computational form from a model. The model should be
    /// validated first.
    pub fn from_model(model: &Model) -> Self {
        let n = model.num_vars();
        let m = model.num_constrs();

        let mut integer = Vec::with_capacity(n);
        for v in model.vars() {
            integer.push(v.vtype != VarType::Continuous);
        }

        // Equilibration scaling by powers of two (exact in binary floating
        // point): rows first, then continuous columns, iterated.
        let mut row_scale = vec![1.0f64; m];
        let mut col_scale = vec![1.0f64; n];
        for _ in 0..3 {
            for (i, c) in model.constrs().iter().enumerate() {
                let mut maxabs = 0.0f64;
                for (v, coeff) in &c.terms {
                    maxabs = maxabs.max((coeff * row_scale[i] * col_scale[v.index()]).abs());
                }
                if maxabs > 0.0 {
                    row_scale[i] *= pow2_inverse(maxabs);
                }
            }
            // Column pass (continuous columns only). The objective does NOT
            // participate: a column must be scaled to match its *matrix*
            // rows or it ends up numerically detached from the constraints
            // that define it. Model generators are responsible for keeping
            // objective magnitudes within a sane range of the matrix (the
            // join-ordering encoder bounds its cardinality window for
            // exactly this reason).
            let mut col_max = vec![0.0f64; n];
            for (i, c) in model.constrs().iter().enumerate() {
                for (v, coeff) in &c.terms {
                    let j = v.index();
                    col_max[j] = col_max[j].max((coeff * row_scale[i] * col_scale[j]).abs());
                }
            }
            for j in 0..n {
                if !integer[j] && col_max[j] > 0.0 {
                    col_scale[j] *= pow2_inverse(col_max[j]);
                }
            }
        }

        let mut columns: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (i, c) in model.constrs().iter().enumerate() {
            for (v, coeff) in &c.terms {
                let j = v.index();
                columns[j].push((i as u32, coeff * row_scale[i] * col_scale[j]));
            }
        }
        let a = CscMatrix::from_columns(m, &columns);

        // Scaled variable bounds: x_scaled = x_model / col_scale.
        let mut lb = Vec::with_capacity(n + m);
        let mut ub = Vec::with_capacity(n + m);
        for (j, v) in model.vars().iter().enumerate() {
            lb.push(v.lb / col_scale[j]);
            ub.push(v.ub / col_scale[j]);
        }
        let mut row_lo = Vec::with_capacity(m);
        let mut row_hi = Vec::with_capacity(m);
        for (i, c) in model.constrs().iter().enumerate() {
            let (lo, hi) = (c.lo * row_scale[i], c.hi * row_scale[i]);
            // s = -activity, so s in [-hi, -lo].
            lb.push(-hi);
            ub.push(-lo);
            row_lo.push(lo);
            row_hi.push(hi);
        }

        let flipped = model.sense() == Sense::Maximize;
        let mut obj = model.objective_dense_min();
        for (j, c) in obj.iter_mut().enumerate() {
            *c *= col_scale[j];
        }
        obj.resize(n + m, 0.0);
        let obj_offset = if flipped {
            -model.objective_constant()
        } else {
            model.objective_constant()
        };

        LpProblem {
            num_structural: n,
            num_rows: m,
            a,
            row_lo,
            row_hi,
            lb,
            ub,
            obj,
            obj_offset,
            integer,
            flipped,
            col_scale,
        }
    }

    /// Maps scaled structural values back to model space.
    pub fn unscale_values(&self, scaled: &[f64]) -> Vec<f64> {
        scaled
            .iter()
            .take(self.num_structural)
            .enumerate()
            .map(|(j, &v)| v * self.col_scale[j])
            .collect()
    }

    /// Total number of columns (structural + logical).
    pub fn num_cols(&self) -> usize {
        self.num_structural + self.num_rows
    }

    /// Whether column `j` is a logical (slack) column.
    pub fn is_logical(&self, j: usize) -> bool {
        j >= self.num_structural
    }

    /// Sparse pattern of column `j` (unit vector for logicals).
    pub fn column_pattern(&self, j: usize) -> Vec<(u32, f64)> {
        if j < self.num_structural {
            self.a.column(j).map(|(r, v)| (r as u32, v)).collect()
        } else {
            vec![((j - self.num_structural) as u32, 1.0)]
        }
    }

    /// Adds `factor * column(j)` into a dense row-space vector.
    pub fn column_axpy(&self, j: usize, factor: f64, dense: &mut [f64]) {
        if j < self.num_structural {
            self.a.column_axpy(j, factor, dense);
        } else {
            dense[j - self.num_structural] += factor;
        }
    }

    /// Dot product of column `j` with a dense row-space vector.
    pub fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.num_structural {
            self.a.column_dot(j, dense)
        } else {
            dense[j - self.num_structural]
        }
    }

    /// Dot product of |column j| with |dense| — used for relative tolerance
    /// estimates during pricing.
    pub fn column_abs_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.num_structural {
            let mut acc = 0.0;
            for (r, v) in self.a.column(j) {
                acc += v.abs() * dense[r].abs();
            }
            acc
        } else {
            dense[j - self.num_structural].abs()
        }
    }

    /// Converts a minimization-space objective value back to the model sense.
    pub fn user_objective(&self, min_obj: f64) -> f64 {
        if self.flipped {
            -(min_obj + self.obj_offset)
        } else {
            min_obj + self.obj_offset
        }
    }
}

/// The power of two closest to `1/x` (exact scaling factor).
fn pow2_inverse(x: f64) -> f64 {
    debug_assert!(x > 0.0);
    let e = (-x.log2()).round();
    e.exp2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn computational_form_shapes() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 4.0, "x");
        let y = m.add_integer(0.0, 3.0, "y");
        m.add_le(x + y * 2.0, 6.0, "c0");
        m.add_ge(x - y, -1.0, "c1");
        m.set_objective(x + y, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        assert_eq!(lp.num_structural, 2);
        assert_eq!(lp.num_rows, 2);
        assert_eq!(lp.num_cols(), 4);
        assert!(lp.flipped);
        // Scaling is a power of two per row/column; check scale-invariant
        // relationships instead of absolute values.
        let (sx, sy) = (lp.col_scale[0], lp.col_scale[1]);
        assert!((lp.obj[0] + sx).abs() < 1e-12);
        assert!((lp.obj[1] + sy).abs() < 1e-12);
        // c0: activity <= 6 -> slack lower bound is -6 * row_scale.
        assert!(lp.lb[2] < 0.0 && lp.lb[2].is_finite());
        assert!(lp.ub[2].is_infinite());
        // c1: activity >= -1 -> slack in [-inf, 1 * row_scale].
        assert!(lp.lb[3].is_infinite());
        assert!(lp.ub[3] > 0.0 && lp.ub[3].is_finite());
        assert_eq!(lp.integer, vec![false, true]);
        // Unscaling maps a scaled point back to model space.
        let scaled = vec![2.0 / sx, 3.0 / sy];
        assert_eq!(lp.unscale_values(&scaled), vec![2.0, 3.0]);
    }

    #[test]
    fn logical_column_is_unit() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 1.0, "x");
        m.add_eq(x * 3.0, 1.5, "c");
        let lp = LpProblem::from_model(&m);
        assert!(lp.is_logical(1));
        // Logical columns are unit vectors regardless of scaling.
        assert_eq!(lp.column_pattern(1), vec![(0, 1.0)]);
        // The structural coefficient is 3 * row_scale * col_scale (both
        // powers of two), so strictly positive.
        let pat = lp.column_pattern(0);
        assert_eq!(pat.len(), 1);
        assert_eq!(pat[0].0, 0);
        assert!(pat[0].1 > 0.0);
    }
}
