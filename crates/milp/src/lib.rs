//! # milpjoin-milp — a from-scratch mixed integer linear programming solver
//!
//! This crate implements the MILP solving substrate required by the
//! reproduction of *"Solving the Join Ordering Problem via Mixed Integer
//! Linear Programming"* (Trummer & Koch, SIGMOD 2017). The paper delegates
//! query optimization to an off-the-shelf MILP solver (Gurobi); since no such
//! solver is available here, this crate provides one:
//!
//! * a **model builder** ([`Model`], [`LinExpr`]) for variables, linear
//!   constraints, and a linear objective;
//! * a **bounded-variable primal simplex** over a sparse LU-factorized basis
//!   with product-form updates ([`simplex`], [`lu`]);
//! * **branch and bound** with best-first + diving node selection,
//!   most-fractional / pseudocost branching, rounding and diving primal
//!   heuristics, and — crucially for the paper — **anytime behaviour**:
//!   a stream of improving incumbents with global lower bounds, so a
//!   guaranteed optimality factor is available at every point in time
//!   ([`solver`], [`branch_bound`]).
//!
//! ## Quick example
//!
//! ```
//! use milpjoin_milp::{Model, Sense, Solver, SolverOptions, SolveStatus};
//!
//! let mut m = Model::new("knapsack");
//! let items = [(3.0, 4.0), (4.0, 5.0), (2.0, 3.0)]; // (weight, value)
//! let vars: Vec<_> =
//!     items.iter().enumerate().map(|(i, _)| m.add_binary(format!("x{i}"))).collect();
//! let weight: milpjoin_milp::LinExpr =
//!     vars.iter().zip(&items).map(|(&v, &(w, _))| v * w).sum();
//! let value: milpjoin_milp::LinExpr =
//!     vars.iter().zip(&items).map(|(&v, &(_, p))| v * p).sum();
//! m.add_le(weight, 6.0, "capacity");
//! m.set_objective(value, Sense::Maximize);
//!
//! let result = Solver::new(SolverOptions::default()).solve(&m).unwrap();
//! assert_eq!(result.status, SolveStatus::Optimal);
//! assert_eq!(result.objective.unwrap(), 8.0);
//! ```

// The simplex / branch-and-bound kernels walk several parallel arrays
// (values, bounds, integrality flags) by column index; iterator rewrites of
// those loops obscure the math for no gain.
#![allow(clippy::needless_range_loop)]

pub mod branch_bound;
pub mod branching;
pub mod expr;
pub mod heuristics;
pub mod lp;
pub mod lu;
pub mod model;
pub mod options;
pub mod parallel;
pub(crate) mod pool;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod solver;
pub mod sparse;
pub mod status;

pub use expr::LinExpr;
pub use model::{ConstrId, Model, ModelError, Sense, Var, VarType};
pub use options::{BranchingRule, SolverOptions};
pub use solution::{IncumbentEvent, MipResult, Solution};
pub use solver::{SolveError, Solver};
pub use status::{SearchStats, SolveStatus, StopReason};
