//! Sparse matrix storage for the simplex engine.
//!
//! The constraint matrix is stored in compressed sparse column (CSC) form:
//! the simplex method overwhelmingly needs column access (pricing a column,
//! forming the entering direction). A companion row-major view is built once
//! for dual pricing and presolve row scans.

/// Compressed sparse column matrix.
#[derive(Debug, Clone, Default)]
pub struct CscMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from per-column `(row, value)` lists.
    pub fn from_columns(nrows: usize, columns: &[Vec<(u32, f64)>]) -> Self {
        let nnz: usize = columns.iter().map(Vec::len).sum();
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in columns {
            for &(r, v) in col {
                debug_assert!((r as usize) < nrows);
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            col_ptr,
            row_idx,
            values,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.col_ptr.len().saturating_sub(1)
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the nonzeros of column `j` as `(row, value)`.
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&r, &v)| (r as usize, v))
    }

    /// Number of nonzeros in column `j`.
    pub fn column_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Dot product of column `j` with a dense vector.
    pub fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (r, v) in self.column(j) {
            acc += v * dense[r];
        }
        acc
    }

    /// Adds `factor * column(j)` into a dense vector.
    pub fn column_axpy(&self, j: usize, factor: f64, dense: &mut [f64]) {
        for (r, v) in self.column(j) {
            dense[r] += factor * v;
        }
    }

    /// Builds the row-major (CSR) view of this matrix.
    pub fn to_csr(&self) -> CsrMatrix {
        let ncols = self.ncols();
        let mut row_counts = vec![0usize; self.nrows];
        for &r in &self.row_idx {
            row_counts[r as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut acc = 0usize;
        row_ptr.push(acc);
        for c in &row_counts {
            acc += c;
            row_ptr.push(acc);
        }
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for j in 0..ncols {
            for (r, v) in self.column(j) {
                let pos = next[r];
                col_idx[pos] = j as u32;
                values[pos] = v;
                next[r] += 1;
            }
        }
        CsrMatrix {
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Compressed sparse row matrix (read-only companion of [`CscMatrix`]).
#[derive(Debug, Clone, Default)]
pub struct CsrMatrix {
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    pub fn nrows(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Iterator over the nonzeros of row `i` as `(col, value)`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CscMatrix::from_columns(
            3,
            &[
                vec![(0, 1.0), (2, 4.0)],
                vec![(1, 3.0)],
                vec![(0, 2.0), (2, 5.0)],
            ],
        )
    }

    #[test]
    fn dims_and_nnz() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.column_nnz(0), 2);
    }

    #[test]
    fn column_access() {
        let m = sample();
        let col: Vec<_> = m.column(2).collect();
        assert_eq!(col, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn column_dot_and_axpy() {
        let m = sample();
        assert_eq!(m.column_dot(0, &[1.0, 1.0, 1.0]), 5.0);
        let mut d = vec![0.0; 3];
        m.column_axpy(2, 2.0, &mut d);
        assert_eq!(d, vec![4.0, 0.0, 10.0]);
    }

    #[test]
    fn csr_round_trip() {
        let m = sample();
        let r = m.to_csr();
        assert_eq!(r.nrows(), 3);
        assert_eq!(r.ncols(), 3);
        let row0: Vec<_> = r.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
        let row1: Vec<_> = r.row(1).collect();
        assert_eq!(row1, vec![(1, 3.0)]);
        assert_eq!(r.row_nnz(2), 2);
    }
}
