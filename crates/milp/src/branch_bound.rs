//! Branch-and-bound search over the LP relaxation.
//!
//! Search organization: a best-first priority queue over open nodes (keyed
//! by the parent LP bound) combined with bounded-depth *plunging* — after
//! branching, the child closer to the LP value is processed immediately,
//! which finds incumbents early and keeps the simplex warm. The global dual
//! bound is the minimum over all open node bounds; the solver emits an event
//! whenever an improving incumbent is found or the global bound rises, which
//! is exactly the anytime interface the paper relies on.
//!
//! Budgets are checked *before* a node is popped (the node under a firing
//! budget simply stays in the heap, keeping its bound open) and again
//! between a node's LP solve and the heuristic/branching work that follows,
//! so a binding wall-clock deadline stops the search promptly instead of
//! finishing another plunge first. The node LPs themselves poll the same
//! deadline internally.
//!
//! ## Two execution modes
//!
//! This module is the **sequential** search ([`SolverOptions::threads`]
//! `<= 1`, the default): one thread, one simplex, a deterministic node
//! order — bit-identical results per (model, options, seed).
//!
//! [`crate::parallel`] runs the same node computation under a **shared
//! open-node pool**: one lock-protected best-bound heap feeds N workers,
//! each owning its private simplex/LU scratch and re-solving its node from
//! the [`NodeData`] bound chain (the same chain walk this module uses). The
//! shared-incumbent protocol: an atomic objective gives workers lock-free
//! pruning against the best solution found by *any* worker, while the
//! assignment itself is published under the pool lock — the same lock that
//! serializes callback events, so the merged anytime stream keeps monotone
//! incumbents and a sound, capped global bound (the minimum over the heap
//! top, parked subtrees, every worker's in-flight subtree bound, and the
//! incumbent). Both modes produce the same [`SearchOutcome`] shape and the
//! same certificates; only the node visit order differs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::branching::{select_branching_var, Pseudocosts};
use crate::heuristics::{diving_heuristic, rounding_heuristic};
use crate::lp::LpProblem;
use crate::options::SolverOptions;
use crate::simplex::{LpStatus, Simplex, SimplexLimits};
use crate::solution::{IncumbentEvent, Solution};
use crate::status::{SearchStats, SolveStatus, StopReason};

/// Events emitted during the search (the anytime stream).
#[derive(Debug, Clone)]
pub enum SolverEvent {
    /// A new best incumbent was found.
    Incumbent(IncumbentEvent),
    /// The global dual bound improved (model sense).
    BoundImproved {
        elapsed: Duration,
        bound: f64,
        nodes: u64,
    },
}

/// One branching decision relative to the parent node. The chain of
/// parents encodes the node's complete bound set; `Arc` links let the
/// sequential heap and the parallel shared pool hold overlapping chains
/// without copying (and let chains cross worker threads).
#[derive(Debug)]
pub(crate) struct NodeData {
    pub(crate) parent: Option<Arc<NodeData>>,
    pub(crate) var: usize,
    pub(crate) lb: f64,
    pub(crate) ub: f64,
    /// LP objective of the parent (for pseudocost updates).
    pub(crate) parent_obj: f64,
    /// Fractional part of `var` at the parent.
    pub(crate) frac: f64,
    /// Whether this is the up-branch.
    pub(crate) up: bool,
    pub(crate) depth: u32,
}

/// An open node in the priority queue.
pub(crate) struct OpenNode {
    pub(crate) bound: f64,
    pub(crate) seq: u64,
    pub(crate) data: Option<Arc<NodeData>>,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest bound pops first.
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The bound a node was opened under: its parent's LP objective, `-inf`
/// for the root. This is the "justifying bound" recorded per expansion for
/// the speculative-work statistic.
pub(crate) fn node_chain_bound(data: &Option<Arc<NodeData>>) -> f64 {
    data.as_ref().map_or(f64::NEG_INFINITY, |d| d.parent_obj)
}

/// Applies the bound chain of a node onto the simplex working bounds
/// (root → leaf, intersecting with any bounds already tightened along the
/// walk). Shared by the sequential search and every parallel worker — the
/// chain walk is how a worker re-creates any pool node on its own scratch.
pub(crate) fn apply_node_bounds(sx: &mut Simplex<'_>, data: &Option<Arc<NodeData>>) {
    sx.reset_bounds();
    let mut chain: Vec<&NodeData> = Vec::new();
    let mut cur = data.as_deref();
    while let Some(d) = cur {
        chain.push(d);
        cur = d.parent.as_deref();
    }
    for d in chain.into_iter().rev() {
        let (lb, ub) = {
            let (l, u) = sx.bounds();
            (l[d.var].max(d.lb), u[d.var].min(d.ub))
        };
        sx.set_bounds(d.var, lb, ub);
    }
}

/// Fractional integer variables of the current LP solution.
pub(crate) fn fractional_candidates(
    sx: &Simplex<'_>,
    lp: &LpProblem,
    integrality_tol: f64,
) -> Vec<(usize, f64)> {
    let values = sx.values();
    let mut out = Vec::new();
    for j in 0..lp.num_structural {
        if lp.integer[j] {
            let v = values[j];
            let f = v - v.floor();
            if f > integrality_tol && f < 1.0 - integrality_tol {
                out.push((j, f));
            }
        }
    }
    out
}

/// Rounds integer entries that are within tolerance of an integer.
pub(crate) fn snap_integral(lp: &LpProblem, mut values: Vec<f64>) -> Vec<f64> {
    for j in 0..lp.num_structural {
        if lp.integer[j] {
            values[j] = values[j].round();
        }
    }
    values
}

/// Counts expanded nodes whose justifying bound already exceeded the final
/// optimum (see [`SearchStats::speculative_nodes`]). `0` without an
/// incumbent: with nothing found, no expansion is provably wasted.
pub(crate) fn speculative_count(
    expanded_bounds: &[f64],
    incumbent: Option<&(Vec<f64>, f64)>,
) -> u64 {
    match incumbent {
        Some((_, opt)) => {
            let tol = 1e-9 * (1.0 + opt.abs());
            expanded_bounds.iter().filter(|&&b| b > opt + tol).count() as u64
        }
        None => 0,
    }
}

/// Row-activity feasibility check of structural values.
pub(crate) fn verify_rows(lp: &LpProblem, values: &[f64]) -> bool {
    let m = lp.num_rows;
    let mut act = vec![0.0; m];
    for j in 0..lp.num_structural {
        if values[j] != 0.0 {
            lp.column_axpy(j, values[j], &mut act);
        }
    }
    for i in 0..m {
        let (lo, hi) = (lp.row_lo[i], lp.row_hi[i]);
        let tol = 1e-6 * (1.0 + act[i].abs());
        if act[i] < lo - tol || act[i] > hi + tol {
            return false;
        }
    }
    true
}

/// Attempts to turn the user-supplied warm-start hints into an integral
/// root candidate: fix the hinted integer variables, solve the LP for the
/// continuous completion, and — if other integer variables come out
/// fractional — finish with one fractional dive. Returns the snapped
/// candidate and its objective (**unverified**: the caller runs its own
/// row check through the incumbent-acceptance path); `None` when the hints
/// are absent, infeasible, or incompletable. Leaves the simplex bounds
/// reset in every case.
pub(crate) fn warm_start_candidate(
    sx: &mut Simplex<'_>,
    lp: &LpProblem,
    opts: &SolverOptions,
    deadline: Option<Instant>,
) -> Option<(Vec<f64>, f64)> {
    let hints = opts.initial_solution.as_ref()?;
    if hints.is_empty() {
        return None;
    }
    sx.reset_bounds();
    let mut fixed_any = false;
    for (var, value) in hints {
        let j = var.index();
        if j >= lp.num_structural || !lp.integer[j] {
            continue;
        }
        // Integer columns are never rescaled (see `LpProblem`), so model
        // values carry over; clamp into the (possibly presolved) bounds.
        let v = value.round().clamp(lp.lb[j], lp.ub[j]).round();
        sx.set_bounds(j, v, v);
        fixed_any = true;
    }
    if !fixed_any {
        sx.reset_bounds();
        return None;
    }
    sx.install_slack_basis();
    let res = sx.solve(&SimplexLimits {
        max_iterations: None,
        deadline,
    });
    let candidate = if res.status != LpStatus::Optimal {
        None
    } else if fractional_candidates(sx, lp, opts.integrality_tol).is_empty() {
        let obj = sx.objective();
        let values = sx.values()[..lp.num_structural].to_vec();
        Some((snap_integral(lp, values), obj))
    } else {
        // Hints only covered part of the integer variables; dive the rest
        // down from the hinted LP.
        let (lb, ub) = {
            let (l, u) = sx.bounds();
            (l.to_vec(), u.to_vec())
        };
        diving_heuristic(sx, lp, &lb, &ub, opts.integrality_tol, deadline)
            .map(|(vals, obj)| (snap_integral(lp, vals), obj))
    };
    sx.reset_bounds();
    candidate
}

/// Summary of a finished search (minimization space).
pub struct SearchOutcome {
    pub status: SolveStatus,
    /// Which budget (if any) cut the search short; [`StopReason::Finished`]
    /// whenever the status is conclusive.
    pub stop: StopReason,
    pub incumbent: Option<(Vec<f64>, f64)>,
    pub bound: f64,
    pub nodes: u64,
    pub simplex_iterations: u64,
    /// Search observability counters (node/worker/speculation accounting).
    pub stats: SearchStats,
}

pub struct BranchBound<'a, F: FnMut(&SolverEvent)> {
    lp: &'a LpProblem,
    opts: &'a SolverOptions,
    callback: F,
    start: Instant,
    deadline: Option<Instant>,
    sx: Simplex<'a>,
    heap: BinaryHeap<OpenNode>,
    pseudo: Pseudocosts,
    incumbent: Option<(Vec<f64>, f64)>,
    nodes: u64,
    seq: u64,
    last_bound_reported: f64,
    /// Diagnostics: LP infeasibilities confirmed from cold restarts.
    infeasible_nodes: u64,
    /// Diagnostics: warm verdicts that required a cold re-solve.
    cold_retries: u64,
    /// Diagnostics: confirmed unbounded verdicts in a bounded model.
    numerical_failures: u64,
    /// Bounds of nodes parked after their LP stalled (kept so the global
    /// dual bound stays valid; never re-processed).
    stalled_bounds: Vec<f64>,
    /// Justifying bound of every expanded node, for the speculative-work
    /// statistic (counted against the final optimum after the search).
    expanded_bounds: Vec<f64>,
    /// Simplex iterations spent on the root relaxation's LP solve (cold
    /// retry included) — the root-LP-bound-vs-search-bound diagnostic.
    root_lp_iterations: u64,
}

impl<'a, F: FnMut(&SolverEvent)> BranchBound<'a, F> {
    pub fn new(lp: &'a LpProblem, opts: &'a SolverOptions, callback: F) -> Self {
        let start = milpjoin_shim::time::now();
        BranchBound {
            lp,
            opts,
            callback,
            start,
            deadline: opts.time_limit.map(|d| start + d),
            sx: Simplex::new(lp),
            heap: BinaryHeap::new(),
            pseudo: Pseudocosts::new(lp.num_structural, &lp.obj),
            incumbent: None,
            nodes: 0,
            seq: 0,
            last_bound_reported: f64::NEG_INFINITY,
            infeasible_nodes: 0,
            cold_retries: 0,
            numerical_failures: 0,
            stalled_bounds: Vec::new(),
            expanded_bounds: Vec::new(),
            root_lp_iterations: 0,
        }
    }

    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn out_of_time(&self) -> bool {
        self.deadline
            .is_some_and(|d| milpjoin_shim::time::now() >= d)
    }

    /// Current global dual bound (min space): min over open nodes, the
    /// current node (if passed), and — when the tree is exhausted — the
    /// incumbent.
    fn global_bound(&self, current: Option<f64>) -> f64 {
        let mut b = f64::INFINITY;
        if let Some(top) = self.heap.peek() {
            b = b.min(top.bound);
        }
        for &s in &self.stalled_bounds {
            b = b.min(s);
        }
        if let Some(c) = current {
            b = b.min(c);
        }
        // Cap at the incumbent objective: the true optimum is
        // min(incumbent, best over open subtrees) >= min(incumbent, b), so
        // the capped value is always a valid lower bound — while an
        // uncapped b can *exceed* the optimum when the only remaining open
        // nodes are about to be pruned (their LP bounds sit above the
        // incumbent), which would report a false "lower bound" above the
        // already-found optimum. This also covers the exhausted-tree case
        // (b = +inf proves the incumbent), while a -inf open bound (e.g.
        // the root right after a warm start) still dominates and is never
        // mistaken for proof.
        if let Some((_, obj)) = &self.incumbent {
            b = b.min(*obj);
        }
        b
    }

    fn maybe_report_bound(&mut self, current: Option<f64>) {
        let b = self.global_bound(current);
        if b.is_finite() && b > self.last_bound_reported + 1e-9 * (1.0 + b.abs()) {
            self.last_bound_reported = b;
            let ev = SolverEvent::BoundImproved {
                elapsed: self.elapsed(),
                bound: self.lp.user_objective(b),
                nodes: self.nodes,
            };
            (self.callback)(&ev);
        }
    }

    /// Verifies an integral candidate against the row system and accepts it
    /// as incumbent if it improves. `current_bound` is the bound context for
    /// the emitted event.
    fn try_accept_incumbent(
        &mut self,
        values: &[f64],
        obj: f64,
        current_bound: Option<f64>,
    ) -> bool {
        if let Some((_, best)) = &self.incumbent {
            if obj >= *best - 1e-12 * (1.0 + best.abs()) {
                return false;
            }
        }
        if !verify_rows(self.lp, values) {
            return false;
        }
        self.incumbent = Some((values.to_vec(), obj));
        let bound = self.global_bound(current_bound);
        let ev = SolverEvent::Incumbent(IncumbentEvent {
            elapsed: self.elapsed(),
            objective: self.lp.user_objective(obj),
            bound: self.lp.user_objective(bound.min(obj)),
            nodes: self.nodes,
            // Events cross the API boundary: report model-space values.
            solution: Solution::new(self.lp.unscale_values(values)),
        });
        (self.callback)(&ev);
        true
    }

    /// Whether a node can be pruned against the incumbent under the gap
    /// target.
    fn prunable(&self, bound: f64) -> bool {
        match &self.incumbent {
            Some((_, inc)) => {
                let slack = self.opts.relative_gap * inc.abs().max(1e-10);
                bound >= inc - slack - 1e-12
            }
            None => false,
        }
    }

    /// Attempts to turn the user-supplied warm-start hints into the root
    /// incumbent (see [`warm_start_candidate`]). Failures are silent: the
    /// search simply starts without an incumbent, as it would have anyway.
    fn try_warm_start(&mut self) {
        if let Some((snapped, obj)) =
            warm_start_candidate(&mut self.sx, self.lp, self.opts, self.deadline)
        {
            self.try_accept_incumbent(&snapped, obj, None);
        }
    }

    /// Runs the search to completion or a limit.
    pub fn run(mut self) -> SearchOutcome {
        // Root node.
        let root_seq = self.next_seq();
        self.heap.push(OpenNode {
            bound: f64::NEG_INFINITY,
            seq: root_seq,
            data: None,
        });

        // Warm start after the root is open so the reported global bound
        // stays -inf (nothing is proven yet) while the incumbent event
        // fires at t ≈ 0.
        self.try_warm_start();

        let mut stop = StopReason::Finished;
        let mut root_unbounded = false;
        let mut root_done = false;

        // Budget checks run against the heap *top* before popping: a node
        // under a firing budget simply stays in the heap (its bound keeps
        // counting as open) instead of the former pop / re-push churn on
        // every budget path.
        'search: while let Some(top_bound) = self.heap.peek().map(|n| n.bound) {
            if self.prunable(top_bound) {
                // Heap is bound-ordered: everything else is prunable too.
                break;
            }
            if self.out_of_time() {
                stop = StopReason::TimeLimit;
                break;
            }
            if self.opts.node_limit.is_some_and(|n| self.nodes >= n) {
                stop = StopReason::NodeLimit;
                break;
            }
            if self.gap_reached(None) {
                break;
            }
            // audit-allow(no-panic): the peek at loop entry proves the heap is
            // non-empty, and nothing pops between.
            let node = self.heap.pop().expect("peeked above");

            // Plunge from this node up to max_dive_depth. The first node of
            // a plunge comes from the heap and is solved from a cold basis
            // (robust); dive children reuse the just-solved parent basis in
            // place (the safest possible warm start), falling back to a cold
            // re-solve whenever the warm solve fails in any way.
            let mut current = Some((node.data, /* warm */ false));
            let mut dive_depth = 0u32;
            while let Some((data, warm)) = current.take() {
                if self.out_of_time() {
                    // The abandoned subtree keeps the last node bound open:
                    // conservatively re-add it so the reported bound stays
                    // valid.
                    let bound = node_chain_bound(&data);
                    let seq = self.next_seq();
                    self.heap.push(OpenNode { bound, seq, data });
                    stop = StopReason::TimeLimit;
                    break 'search;
                }

                apply_node_bounds(&mut self.sx, &data);
                if !warm {
                    self.sx.install_slack_basis();
                }
                // Iteration count before this node's LP: the warm start and
                // heuristic dives share the simplex, so the root's share is
                // a delta, not the running total.
                let iters_before = self.sx.iterations_total();
                let mut res = self.sx.solve(&SimplexLimits {
                    max_iterations: None,
                    deadline: self.deadline,
                });
                if warm && res.status != LpStatus::Optimal {
                    // Warm starts can strand phase 1 in a bad basis; verify
                    // any non-optimal verdict from a cold start.
                    self.sx.install_slack_basis();
                    res = self.sx.solve(&SimplexLimits {
                        max_iterations: None,
                        deadline: self.deadline,
                    });
                    self.cold_retries += 1;
                }
                if data.is_none() {
                    self.root_lp_iterations += self.sx.iterations_total() - iters_before;
                }
                self.nodes += 1;
                self.expanded_bounds.push(node_chain_bound(&data));

                // A stalled LP that is primal-feasible is still a usable
                // branching point: its fractional solution guides the
                // children, whose valid bound is inherited from the parent.
                let stalled_feasible =
                    res.status == LpStatus::IterationLimit && self.sx.primal_infeasibility() < 1e-5;

                match res.status {
                    LpStatus::Infeasible => {
                        self.infeasible_nodes += 1;
                        self.maybe_report_bound(None);
                        break;
                    }
                    LpStatus::Unbounded => {
                        if data.is_none() {
                            root_unbounded = true;
                            break 'search;
                        }
                        // A bounded-below MILP cannot have unbounded nodes
                        // unless the root was. Never drop the node silently:
                        // park it so its bound stays open.
                        self.numerical_failures += 1;
                        let bound = node_chain_bound(&data);
                        self.stalled_bounds.push(bound);
                        break;
                    }
                    LpStatus::TimeLimit => {
                        stop = StopReason::TimeLimit;
                        let bound = node_chain_bound(&data);
                        let seq = self.next_seq();
                        self.heap.push(OpenNode { bound, seq, data });
                        break 'search;
                    }
                    LpStatus::IterationLimit if !stalled_feasible => {
                        // The node LP stalled at an infeasible point; park
                        // the node (its parent bound stays part of the
                        // global bound) and move on rather than aborting
                        // the whole search.
                        self.numerical_failures += 1;
                        let bound = node_chain_bound(&data);
                        self.stalled_bounds.push(bound);
                        break;
                    }
                    LpStatus::IterationLimit | LpStatus::Optimal => {}
                }

                // For a proven-optimal LP the objective is a valid subtree
                // bound; a stalled-feasible LP only inherits its parent's.
                let exact = res.status == LpStatus::Optimal;
                let obj = if exact {
                    res.objective
                } else {
                    node_chain_bound(&data)
                };

                // Deadline re-check between the node LP and the heuristic /
                // branching work below: a deadline that expired during the
                // LP stops here instead of funding another dive or
                // heuristic first. The subtree stays open under its fresh
                // bound.
                if self.out_of_time() {
                    let seq = self.next_seq();
                    self.heap.push(OpenNode {
                        bound: obj,
                        seq,
                        data,
                    });
                    stop = StopReason::TimeLimit;
                    break 'search;
                }

                // Pseudocost update from the parent's prediction.
                if exact {
                    if let Some(d) = &data {
                        if d.parent_obj.is_finite() {
                            self.pseudo.record(d.var, d.frac, obj - d.parent_obj, d.up);
                        }
                    }
                }

                if self.prunable(obj) {
                    self.maybe_report_bound(None);
                    break;
                }

                let candidates =
                    fractional_candidates(&self.sx, self.lp, self.opts.integrality_tol);
                if candidates.is_empty() {
                    let point_obj = self.sx.objective();
                    let values = self.sx.values()[..self.lp.num_structural].to_vec();
                    let snapped = snap_integral(self.lp, values);
                    self.try_accept_incumbent(&snapped, point_obj, None);
                    self.maybe_report_bound(None);
                    break;
                }

                // Select the branching variable and capture the node state
                // *before* heuristics run: they re-solve LPs on the shared
                // simplex and would otherwise leave stale values behind.
                let Some((var, frac)) =
                    select_branching_var(self.opts.branching, &candidates, &self.pseudo)
                else {
                    break;
                };
                let val = self.sx.values()[var];
                let (node_lb, node_ub) = {
                    let (l, u) = self.sx.bounds();
                    (l[var], u[var])
                };
                let depth = data.as_ref().map_or(0, |d| d.depth) + 1;

                // Root-only diving heuristic for a fast first incumbent.
                if data.is_none() && !root_done {
                    root_done = true;
                    if self.opts.root_diving {
                        self.run_diving(obj);
                    }
                } else if self.opts.heuristic_frequency > 0
                    && self.nodes.is_multiple_of(self.opts.heuristic_frequency)
                {
                    self.run_rounding(obj);
                }

                let down = Arc::new(NodeData {
                    parent: data.clone(),
                    var,
                    lb: node_lb,
                    ub: val.floor(),
                    parent_obj: obj,
                    frac,
                    up: false,
                    depth,
                });
                let up = Arc::new(NodeData {
                    parent: data.clone(),
                    var,
                    lb: val.ceil(),
                    ub: node_ub,
                    parent_obj: obj,
                    frac,
                    up: true,
                    depth,
                });
                // Dive toward the nearest integer.
                let (first, second) = if frac < 0.5 { (down, up) } else { (up, down) };

                let seq = self.next_seq();
                self.heap.push(OpenNode {
                    bound: obj,
                    seq,
                    data: Some(second),
                });

                dive_depth += 1;
                if dive_depth <= self.opts.max_dive_depth {
                    current = Some((Some(first), true));
                } else {
                    let seq = self.next_seq();
                    self.heap.push(OpenNode {
                        bound: obj,
                        seq,
                        data: Some(first),
                    });
                }
                self.maybe_report_bound(current.as_ref().map(|_| obj));
            }
        }

        if std::env::var_os("MILP_STATS").is_some() {
            eprintln!(
                "bb: nodes={} infeasible={} cold_retries={} numerical_failures={} heap_left={}",
                self.nodes,
                self.infeasible_nodes,
                self.cold_retries,
                self.numerical_failures,
                self.heap.len()
            );
        }
        // Parked nodes that the incumbent does not prune keep the search
        // inconclusive (recorded only when no configured budget fired
        // first: the stop reason reports the *earliest* cause).
        if stop == StopReason::Finished && self.stalled_bounds.iter().any(|&b| !self.prunable(b)) {
            stop = StopReason::Stalled;
        }
        let bound = self.global_bound(None);
        let status = if root_unbounded {
            SolveStatus::Unbounded
        } else {
            match (&self.incumbent, stop != StopReason::Finished) {
                (Some(_), false) => SolveStatus::Optimal,
                (Some(_), true) => {
                    if self.gap_reached(None) {
                        SolveStatus::Optimal
                    } else {
                        SolveStatus::Feasible
                    }
                }
                (None, true) => SolveStatus::NoSolutionFound,
                (None, false) => SolveStatus::Infeasible,
            }
        };
        // A conclusive verdict overrides a limit that fired in the same
        // moment (e.g. the gap target was already met when the clock ran
        // out): `Optimal` always pairs with `Finished`.
        if status == SolveStatus::Optimal {
            stop = StopReason::Finished;
        }
        // When proven optimal the bound equals the incumbent objective.
        let final_bound = match (&self.incumbent, status) {
            (Some((_, obj)), SolveStatus::Optimal) => *obj,
            _ => bound,
        };
        let speculative = speculative_count(&self.expanded_bounds, self.incumbent.as_ref());
        SearchOutcome {
            status,
            stop,
            incumbent: self.incumbent,
            bound: final_bound,
            nodes: self.nodes,
            simplex_iterations: self.sx.iterations_total(),
            stats: SearchStats {
                nodes_expanded: self.nodes,
                workers_used: 1,
                speculative_nodes: speculative,
                root_lp_iterations: self.root_lp_iterations,
                total_lp_iterations: self.sx.iterations_total(),
            },
        }
    }

    fn gap_reached(&self, current: Option<f64>) -> bool {
        let Some((_, inc)) = &self.incumbent else {
            return false;
        };
        let bound = self.global_bound(current);
        if !bound.is_finite() {
            return false;
        }
        let gap = (inc - bound).max(0.0) / inc.abs().max(1e-10);
        gap <= self.opts.relative_gap
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn run_diving(&mut self, current_obj: f64) {
        let (lb, ub) = {
            let (l, u) = self.sx.bounds();
            (l.to_vec(), u.to_vec())
        };
        if let Some((vals, obj)) = diving_heuristic(
            &mut self.sx,
            self.lp,
            &lb,
            &ub,
            self.opts.integrality_tol,
            self.deadline,
        ) {
            let snapped = snap_integral(self.lp, vals);
            self.try_accept_incumbent(&snapped, obj, Some(current_obj));
        }
    }

    fn run_rounding(&mut self, current_obj: f64) {
        let base = self.sx.values().to_vec();
        let (lb, ub) = {
            let (l, u) = self.sx.bounds();
            (l.to_vec(), u.to_vec())
        };
        if let Some((vals, obj)) =
            rounding_heuristic(&mut self.sx, self.lp, &lb, &ub, &base, self.deadline)
        {
            let snapped = snap_integral(self.lp, vals);
            self.try_accept_incumbent(&snapped, obj, Some(current_obj));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn run(model: &Model, opts: &SolverOptions) -> SearchOutcome {
        let lp = LpProblem::from_model(model);
        let bb = BranchBound::new(&lp, opts, |_ev| {});
        bb.run()
    }

    #[test]
    fn knapsack_optimum() {
        // max 4a + 5b + 3c, 3a + 4b + 2c <= 6 -> b + c = 8
        let mut m = Model::new("ks");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(a * 3.0 + b * 4.0 + c * 2.0, 6.0, "cap");
        m.set_objective(a * 4.0 + b * 5.0 + c * 3.0, Sense::Maximize);
        let out = run(&m, &SolverOptions::default());
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.stop, StopReason::Finished);
        let (_, obj) = out.incumbent.unwrap();
        // Minimization space: -8.
        assert!((obj + 8.0).abs() < 1e-6, "obj={obj}");
    }

    #[test]
    fn infeasible_integer_program() {
        let mut m = Model::new("inf");
        let x = m.add_integer(0.0, 10.0, "x");
        m.add_ge(x * 2.0, 3.0, "c0");
        m.add_le(x * 2.0, 3.5, "c1"); // forces 1.5 <= x <= 1.75: no integer
        m.set_objective(x.into(), Sense::Minimize);
        let out = run(&m, &SolverOptions::default());
        assert_eq!(out.status, SolveStatus::Infeasible);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new("lp");
        let x = m.add_continuous(0.0, 2.0, "x");
        m.set_objective(x.into(), Sense::Maximize);
        let out = run(&m, &SolverOptions::default());
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.incumbent.unwrap().1 + 2.0).abs() < 1e-8);
    }

    #[test]
    fn warm_start_becomes_root_incumbent() {
        // max 4a + 5b + 3c, 3a + 4b + 2c <= 6. Feasible hint {a}: value 4
        // (min space -4). The FIRST event must be that incumbent, before
        // any bound event.
        let mut m = Model::new("ws");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_le(a * 3.0 + b * 4.0 + c * 2.0, 6.0, "cap");
        m.set_objective(a * 4.0 + b * 5.0 + c * 3.0, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let opts = SolverOptions::default().initial_solution(vec![(a, 1.0), (b, 0.0), (c, 0.0)]);
        let mut events: Vec<(bool, f64)> = Vec::new();
        let bb = BranchBound::new(&lp, &opts, |ev| match ev {
            SolverEvent::Incumbent(inc) => events.push((true, inc.objective)),
            SolverEvent::BoundImproved { bound, .. } => events.push((false, *bound)),
        });
        let out = bb.run();
        assert_eq!(out.status, SolveStatus::Optimal);
        // First event is the warm-start incumbent with the hinted objective.
        let (is_incumbent, obj) = events[0];
        assert!(is_incumbent, "first event must be the warm-start incumbent");
        assert!((obj - 4.0).abs() < 1e-9, "warm incumbent {obj}");
        // The search still reaches the true optimum (b + c = 8).
        assert!((out.incumbent.unwrap().1 + 8.0).abs() < 1e-6);
    }

    #[test]
    fn partial_warm_start_completed_by_dive() {
        // Hint only one variable; the dive must fix the rest.
        let mut m = Model::new("ws2");
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = crate::expr::LinExpr::new();
        let mut obj = crate::expr::LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap += v * (1.0 + (i % 3) as f64);
            obj += v * (1.5 + (i % 4) as f64);
        }
        m.add_le(cap, 8.0, "cap");
        m.set_objective(obj, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let opts = SolverOptions::default().initial_solution(vec![(vars[3], 1.0)]);
        let mut first_is_incumbent = None;
        let bb = BranchBound::new(&lp, &opts, |ev| {
            if first_is_incumbent.is_none() {
                first_is_incumbent = Some(matches!(ev, SolverEvent::Incumbent(_)));
            }
        });
        let out = bb.run();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(
            first_is_incumbent,
            Some(true),
            "dive must complete the partial hint"
        );
    }

    #[test]
    fn infeasible_warm_start_is_dropped() {
        // Hints violating a constraint must not poison the search.
        let mut m = Model::new("ws3");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_le(a + b, 1.0, "excl");
        m.set_objective(a * 2.0 + b * 3.0, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let opts = SolverOptions::default().initial_solution(vec![(a, 1.0), (b, 1.0)]);
        let bb = BranchBound::new(&lp, &opts, |_| {});
        let out = bb.run();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.incumbent.unwrap().1 + 3.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_with_zero_node_limit_returns_hint() {
        let mut m = Model::new("ws4");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_le(a + b, 1.0, "excl");
        m.set_objective(a * 2.0 + b * 3.0, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let mut opts = SolverOptions::default().initial_solution(vec![(a, 1.0), (b, 0.0)]);
        opts.node_limit = Some(0);
        let bb = BranchBound::new(&lp, &opts, |_| {});
        let out = bb.run();
        // The only incumbent is the hint; nothing was proven. The stop
        // reason records the node budget — a deterministic resource limit.
        assert_eq!(out.status, SolveStatus::Feasible);
        assert_eq!(out.stop, StopReason::NodeLimit);
        assert_eq!(out.nodes, 0);
        assert!((out.incumbent.unwrap().1 + 2.0).abs() < 1e-9);
        assert_eq!(out.bound, f64::NEG_INFINITY);
    }

    #[test]
    fn events_are_emitted() {
        let mut m = Model::new("ev");
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut cap = crate::expr::LinExpr::new();
        let mut obj = crate::expr::LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            cap += v * (1.0 + i as f64);
            obj += v * (2.0 + (i as f64) * 1.3);
        }
        m.add_le(cap, 7.0, "cap");
        m.set_objective(obj, Sense::Maximize);
        let lp = LpProblem::from_model(&m);
        let opts = SolverOptions::default();
        let mut incumbents = 0;
        let mut bounds = 0;
        let bb = BranchBound::new(&lp, &opts, |ev| match ev {
            SolverEvent::Incumbent(_) => incumbents += 1,
            SolverEvent::BoundImproved { .. } => bounds += 1,
        });
        let out = bb.run();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!(incumbents >= 1);
        assert!(bounds >= 1);
    }
}
