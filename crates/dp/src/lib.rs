//! # milpjoin-dp — dynamic programming baseline
//!
//! The classical Selinger-style exhaustive optimizer the paper compares
//! against (§7.1): dynamic programming over table subsets, restricted to
//! left-deep plans, with cross products allowed. For every subset `S` of the
//! query tables the cheapest left-deep plan is
//!
//! ```text
//! best(S) = min over t in S of  cost(best(S \ {t}) ⋈ t)
//! ```
//!
//! which takes `O(2^n · n)` time and `O(2^n)` memory — practical to about 25
//! tables, after which memory and time explode by a factor 1024 per 10
//! additional tables (exactly the behaviour reported in the paper, where DP
//! produces no plan within the timeout beyond 20–30 tables).
//!
//! The optimizer is deadline- and memory-aware: it returns
//! [`DpError::Timeout`] or [`DpError::MemoryLimit`] instead of hanging,
//! which is what the Figure 2 harness records as "no plan yet".
//!
//! A greedy nearest-neighbor heuristic ([`greedy_order`]) is also provided
//! for sanity comparisons (not part of the paper's evaluation, which
//! excludes heuristics by design).

use std::time::Instant;

use milpjoin_qopt::cost::{CostModelKind, CostParams, JoinContext};
use milpjoin_qopt::{Catalog, Estimator, LeftDeepPlan, Query, TableSet};

pub mod dpconv;
pub mod orderer;

pub use dpconv::{optimize_conv, DpConvOptimizer};
pub use orderer::{DpOptimizer, GreedyOptimizer};

/// Failure modes of the DP baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// The deadline expired before the DP table was complete.
    Timeout,
    /// The DP table would exceed the configured memory budget.
    MemoryLimit {
        required_bytes: u64,
        budget_bytes: u64,
    },
    /// The query is empty or otherwise unoptimizable.
    InvalidQuery,
}

impl std::fmt::Display for DpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DpError::Timeout => write!(f, "dynamic programming timed out"),
            DpError::MemoryLimit {
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "DP table needs {required_bytes} bytes, budget is {budget_bytes}"
            ),
            DpError::InvalidQuery => write!(f, "query cannot be optimized"),
        }
    }
}

impl std::error::Error for DpError {}

/// Configuration of the DP optimizer.
#[derive(Debug, Clone)]
pub struct DpOptions {
    pub deadline: Option<Instant>,
    /// Memory budget for the DP arrays (default 4 GiB).
    pub memory_budget_bytes: u64,
    pub cost_model: CostModelKind,
    pub params: CostParams,
}

impl Default for DpOptions {
    fn default() -> Self {
        DpOptions {
            deadline: None,
            memory_budget_bytes: 4 << 30,
            cost_model: CostModelKind::Cout,
            params: CostParams::default(),
        }
    }
}

/// Result of a successful DP run.
#[derive(Debug, Clone)]
pub struct DpResult {
    pub plan: LeftDeepPlan,
    /// Cost of the optimal plan under the configured model.
    pub cost: f64,
    /// Number of DP states expanded.
    pub states: u64,
    pub elapsed: std::time::Duration,
}

/// Exhaustive left-deep join ordering with cross products via subset DP.
pub fn optimize(
    catalog: &Catalog,
    query: &Query,
    options: &DpOptions,
) -> Result<DpResult, DpError> {
    let start = milpjoin_shim::time::now();
    let n = query.num_tables();
    if n == 0 || n > 63 {
        return Err(DpError::InvalidQuery);
    }
    if n == 1 {
        return Ok(DpResult {
            plan: LeftDeepPlan::from_order(query.tables.clone()),
            cost: 0.0,
            states: 1,
            elapsed: start.elapsed(),
        });
    }

    // Memory check before allocating 2^n entries.
    let num_sets: u64 = 1u64 << n;
    let required = num_sets * (std::mem::size_of::<f64>() as u64 + 1);
    if required > options.memory_budget_bytes {
        return Err(DpError::MemoryLimit {
            required_bytes: required,
            budget_bytes: options.memory_budget_bytes,
        });
    }

    let est = Estimator::new(catalog, query);
    // Cardinality of each subset is needed repeatedly; computing it on the
    // fly keeps memory at 9 bytes/state (cost + choice).
    let mut best_cost = vec![f64::INFINITY; num_sets as usize];
    let mut best_last: Vec<u8> = vec![u8::MAX; num_sets as usize];

    // Base cases: singletons cost nothing.
    for i in 0..n {
        best_cost[TableSet::single(i).0 as usize] = 0.0;
    }

    let num_joins = n - 1;
    let mut states = 0u64;
    // Enumerate subsets in increasing popcount order implicitly: any subset
    // in increasing numeric order already sees all of its proper subsets.
    for set_bits in 1..num_sets {
        let set = TableSet(set_bits);
        let size = set.len();
        if size < 2 {
            continue;
        }
        // Deadline check, amortized.
        if set_bits % 8192 == 0 {
            if let Some(d) = options.deadline {
                if milpjoin_shim::time::now() >= d {
                    return Err(DpError::Timeout);
                }
            }
        }
        let output_card = est.cardinality(set);
        let join_index = size - 2; // joining the `size`-th table is join #size-2
        let mut best = f64::INFINITY;
        let mut best_t = u8::MAX;
        for t in set.iter() {
            let rest = set.remove(t);
            let prev = best_cost[rest.0 as usize];
            if !prev.is_finite() {
                continue;
            }
            let outer_card = est.cardinality(rest);
            let inner_card = est.cardinality(TableSet::single(t));
            let ctx = JoinContext {
                outer_card,
                inner_card,
                output_card,
                join_index,
                num_joins,
            };
            let join = options.cost_model.join_cost(&ctx, &options.params);
            let total = prev + join;
            if total < best {
                best = total;
                best_t = t as u8;
            }
        }
        best_cost[set_bits as usize] = best;
        best_last[set_bits as usize] = best_t;
        states += 1;
    }

    // Reconstruct the order.
    let full = TableSet::full(n);
    let mut order_rev = Vec::with_capacity(n);
    let mut cur = full;
    while cur.len() > 1 {
        let t = best_last[cur.0 as usize];
        if t == u8::MAX {
            return Err(DpError::InvalidQuery);
        }
        order_rev.push(query.tables[t as usize]);
        cur = cur.remove(t as usize);
    }
    // audit-allow(no-panic): the extraction loop above runs until
    // exactly one table remains in `cur`.
    order_rev.push(query.tables[cur.first().expect("one table left")]);
    order_rev.reverse();

    Ok(DpResult {
        plan: LeftDeepPlan::from_order(order_rev),
        cost: best_cost[full.0 as usize],
        states,
        elapsed: start.elapsed(),
    })
}

/// Greedy nearest-neighbor construction: start from the smallest table and
/// repeatedly append the table minimizing the next join's cost. Linear-time
/// sanity baseline.
pub fn greedy_order(catalog: &Catalog, query: &Query, options: &DpOptions) -> LeftDeepPlan {
    let n = query.num_tables();
    if n == 0 {
        return LeftDeepPlan::from_order(Vec::new());
    }
    let est = Estimator::new(catalog, query);
    let start = (0..n)
        .min_by(|&a, &b| {
            let ca = est.cardinality(TableSet::single(a));
            let cb = est.cardinality(TableSet::single(b));
            ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
        })
        // audit-allow(no-panic): `0..n` is non-empty — validated queries
        // have at least one table.
        .unwrap();
    let mut set = TableSet::single(start);
    let mut order = vec![query.tables[start]];
    let num_joins = n - 1;
    while set.len() < n {
        let join_index = set.len() - 1;
        let outer_card = est.cardinality(set);
        let (next, _) = (0..n)
            .filter(|&t| !set.contains(t))
            .map(|t| {
                let result = set.insert(t);
                let ctx = JoinContext {
                    outer_card,
                    inner_card: est.cardinality(TableSet::single(t)),
                    output_card: est.cardinality(result),
                    join_index,
                    num_joins,
                };
                (t, options.cost_model.join_cost(&ctx, &options.params))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            // audit-allow(no-panic): the while-loop guard proves the remaining
            // set is non-empty.
            .expect("at least one remaining table");
        set = set.insert(next);
        order.push(query.tables[next]);
    }
    LeftDeepPlan::from_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milpjoin_qopt::cost::plan_cost;
    use milpjoin_qopt::Predicate;
    use std::time::Duration;

    fn example() -> (Catalog, Query) {
        let mut c = Catalog::new();
        let r = c.add_table("R", 10.0);
        let s = c.add_table("S", 1000.0);
        let t = c.add_table("T", 100.0);
        let mut q = Query::new(vec![r, s, t]);
        q.add_predicate(Predicate::binary(r, s, 0.1));
        (c, q)
    }

    #[test]
    fn finds_optimal_three_table_plan() {
        let (c, q) = example();
        let res = optimize(&c, &q, &DpOptions::default()).unwrap();
        res.plan.validate(&q).unwrap();
        // Optimal Cout: intermediate 1000 (either R⋈S first or R⋈T first).
        assert!((res.cost - 1000.0).abs() < 1e-6, "cost {}", res.cost);
        // Cross-check against the exact plan costing.
        let pc = plan_cost(
            &c,
            &q,
            &res.plan,
            CostModelKind::Cout,
            &CostParams::default(),
        );
        assert!((pc.total - res.cost).abs() < 1e-6);
    }

    #[test]
    fn exhaustive_agreement_on_random_queries() {
        // DP must match explicit enumeration of all permutations.
        use milpjoin_qopt::LeftDeepPlan;
        let (c, q) = example();
        let opts = DpOptions::default();
        let dp = optimize(&c, &q, &opts).unwrap();
        let tables = q.tables.clone();
        let mut best = f64::INFINITY;
        // All 6 permutations of 3 tables.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let plan = LeftDeepPlan::from_order(p.iter().map(|&i| tables[i]).collect());
            let cost = plan_cost(&c, &q, &plan, opts.cost_model, &opts.params).total;
            best = best.min(cost);
        }
        assert!((dp.cost - best).abs() < 1e-9);
    }

    #[test]
    fn single_and_two_table_queries() {
        let mut c = Catalog::new();
        let r = c.add_table("R", 50.0);
        let q1 = Query::new(vec![r]);
        let res = optimize(&c, &q1, &DpOptions::default()).unwrap();
        assert_eq!(res.plan.order, vec![r]);

        let s = c.add_table("S", 20.0);
        let q2 = Query::new(vec![r, s]);
        let res2 = optimize(&c, &q2, &DpOptions::default()).unwrap();
        assert_eq!(res2.plan.order.len(), 2);
        // Only intermediate is the final result: Cout cost 0.
        assert_eq!(res2.cost, 0.0);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..30)
            .map(|i| c.add_table(format!("T{i}"), 10.0))
            .collect();
        let q = Query::new(ids);
        let opts = DpOptions {
            memory_budget_bytes: 1 << 20,
            ..Default::default()
        };
        match optimize(&c, &q, &opts) {
            Err(DpError::MemoryLimit { .. }) => {}
            other => panic!("expected memory limit, got {other:?}"),
        }
    }

    #[test]
    fn deadline_enforced() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..22)
            .map(|i| c.add_table(format!("T{i}"), 10.0))
            .collect();
        let q = Query::new(ids);
        let opts = DpOptions {
            deadline: Some(milpjoin_shim::time::now() + Duration::from_millis(1)),
            ..Default::default()
        };
        match optimize(&c, &q, &opts) {
            Err(DpError::Timeout) => {}
            Ok(r) => {
                // Machine fast enough to finish 22 tables in a millisecond is
                // conceivable in release mode; accept but require validity.
                r.plan.validate(&q).unwrap();
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn greedy_is_valid_and_not_better_than_dp() {
        for seed in 0..5u64 {
            let mut c = Catalog::new();
            let ids: Vec<_> = (0..7)
                .map(|i| c.add_table(format!("T{i}"), 10.0 + (seed as f64 + 1.0) * i as f64))
                .collect();
            let mut q = Query::new(ids.clone());
            for i in 0..6 {
                q.add_predicate(Predicate::binary(ids[i], ids[i + 1], 0.1));
            }
            let opts = DpOptions::default();
            let dp = optimize(&c, &q, &opts).unwrap();
            let greedy = greedy_order(&c, &q, &opts);
            greedy.validate(&q).unwrap();
            let gc = plan_cost(&c, &q, &greedy, opts.cost_model, &opts.params).total;
            assert!(gc >= dp.cost - 1e-9, "greedy {gc} beat DP {}", dp.cost);
        }
    }

    #[test]
    fn hash_cost_model_dp() {
        let (c, q) = example();
        let opts = DpOptions {
            cost_model: CostModelKind::Hash,
            ..Default::default()
        };
        let res = optimize(&c, &q, &opts).unwrap();
        res.plan.validate(&q).unwrap();
        let pc = plan_cost(&c, &q, &res.plan, CostModelKind::Hash, &opts.params);
        assert!((pc.total - res.cost).abs() < 1e-6);
    }
}
