//! [`JoinOrderer`] wrappers over the DP baseline and the greedy heuristic.
//!
//! Both carry their cost model as construction-time configuration (matching
//! how [`milpjoin_qopt::JoinOrderer`] splits concerns: options are runtime
//! limits only) and translate between the trait's unified types and the
//! crate-native [`DpOptions`] / [`DpError`].

use milpjoin_qopt::cost::{plan_cost, CostModelKind, CostParams};
use milpjoin_qopt::orderer::{
    CostTrace, JoinOrderer, OrderingError, OrderingOptions, OrderingOutcome,
};
use milpjoin_qopt::{Catalog, Query};

use crate::{greedy_order, optimize, DpError, DpOptions};

/// Exhaustive Selinger-style dynamic programming as a [`JoinOrderer`].
/// Optimal or nothing: on success the returned plan is proven optimal under
/// the configured cost model.
#[derive(Debug, Clone)]
pub struct DpOptimizer {
    pub cost_model: CostModelKind,
    pub params: CostParams,
    /// Memory budget for the DP arrays (default 4 GiB).
    pub memory_budget_bytes: u64,
}

impl Default for DpOptimizer {
    fn default() -> Self {
        let defaults = DpOptions::default();
        DpOptimizer {
            cost_model: defaults.cost_model,
            params: defaults.params,
            memory_budget_bytes: defaults.memory_budget_bytes,
        }
    }
}

impl DpOptimizer {
    pub fn new(cost_model: CostModelKind) -> Self {
        DpOptimizer {
            cost_model,
            ..Default::default()
        }
    }

    fn dp_options(&self, options: &OrderingOptions) -> DpOptions {
        DpOptions {
            deadline: options
                .time_limit
                .map(|limit| milpjoin_shim::time::now() + limit),
            memory_budget_bytes: self.memory_budget_bytes,
            cost_model: self.cost_model,
            params: self.params,
        }
    }
}

impl JoinOrderer for DpOptimizer {
    fn name(&self) -> &'static str {
        "dp"
    }

    fn cost_model(&self) -> (CostModelKind, CostParams) {
        (self.cost_model, self.params)
    }

    fn order(
        &self,
        catalog: &Catalog,
        query: &Query,
        options: &OrderingOptions,
    ) -> Result<OrderingOutcome, OrderingError> {
        // The DP kernel indexes the catalog directly; reject a query it
        // does not match before the estimator can panic.
        query
            .validate(catalog)
            .map_err(|e| OrderingError::InvalidQuery(e.to_string()))?;
        let res = optimize(catalog, query, &self.dp_options(options)).map_err(|e| match e {
            DpError::Timeout => OrderingError::Timeout,
            DpError::MemoryLimit { .. } => OrderingError::ResourceLimit(e.to_string()),
            DpError::InvalidQuery => OrderingError::InvalidQuery(e.to_string()),
        })?;
        // DP proves exact optimality, so its exact cost is also the
        // cost-space lower bound: a one-point trace with factor 1.
        Ok(OrderingOutcome {
            trace: CostTrace::single(res.elapsed, res.cost, Some(res.cost)),
            plan: res.plan,
            cost: res.cost,
            objective: res.cost,
            bound: Some(res.cost),
            proven_optimal: true,
            elapsed: res.elapsed,
            search: Default::default(),
            route: None,
        })
    }
}

/// Greedy nearest-neighbor construction as a [`JoinOrderer`]. Instant and
/// guarantee-free: `bound` is `None` and `proven_optimal` is `false`.
#[derive(Debug, Clone)]
pub struct GreedyOptimizer {
    pub cost_model: CostModelKind,
    pub params: CostParams,
}

impl Default for GreedyOptimizer {
    fn default() -> Self {
        let defaults = DpOptions::default();
        GreedyOptimizer {
            cost_model: defaults.cost_model,
            params: defaults.params,
        }
    }
}

impl GreedyOptimizer {
    pub fn new(cost_model: CostModelKind) -> Self {
        GreedyOptimizer {
            cost_model,
            ..Default::default()
        }
    }
}

impl JoinOrderer for GreedyOptimizer {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn cost_model(&self) -> (CostModelKind, CostParams) {
        (self.cost_model, self.params)
    }

    fn order(
        &self,
        catalog: &Catalog,
        query: &Query,
        _options: &OrderingOptions,
    ) -> Result<OrderingOutcome, OrderingError> {
        if query.num_tables() == 0 {
            return Err(OrderingError::InvalidQuery("query has no tables".into()));
        }
        query
            .validate(catalog)
            .map_err(|e| OrderingError::InvalidQuery(e.to_string()))?;
        let start = milpjoin_shim::time::now();
        let dp_options = DpOptions {
            cost_model: self.cost_model,
            params: self.params,
            ..DpOptions::default()
        };
        let plan = greedy_order(catalog, query, &dp_options);
        let cost = plan_cost(catalog, query, &plan, self.cost_model, &self.params).total;
        let elapsed = start.elapsed();
        // No bound: a greedy construction proves nothing, so
        // `guaranteed_factor_at` honestly stays `None`.
        Ok(OrderingOutcome {
            trace: CostTrace::single(elapsed, cost, None),
            plan,
            cost,
            objective: cost,
            bound: None,
            proven_optimal: false,
            elapsed,
            search: Default::default(),
            route: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use milpjoin_qopt::Predicate;

    fn example() -> (Catalog, Query) {
        let mut c = Catalog::new();
        let r = c.add_table("R", 10.0);
        let s = c.add_table("S", 1000.0);
        let t = c.add_table("T", 100.0);
        let mut q = Query::new(vec![r, s, t]);
        q.add_predicate(Predicate::binary(r, s, 0.1));
        (c, q)
    }

    #[test]
    fn dp_through_the_trait() {
        let (c, q) = example();
        let out = DpOptimizer::default()
            .order(&c, &q, &OrderingOptions::default())
            .unwrap();
        out.plan.validate(&q).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.bound, Some(out.cost));
        assert_eq!(out.guaranteed_factor(), Some(1.0));
        assert!((out.cost - 1000.0).abs() < 1e-6);
        assert_eq!(out.trace.points().len(), 1);
    }

    #[test]
    fn greedy_through_the_trait() {
        let (c, q) = example();
        let out = GreedyOptimizer::default()
            .order(&c, &q, &OrderingOptions::default())
            .unwrap();
        out.plan.validate(&q).unwrap();
        assert!(!out.proven_optimal);
        assert_eq!(out.bound, None);
        assert_eq!(out.guaranteed_factor(), None);
        // Greedy is never better than the DP optimum.
        assert!(out.cost >= 1000.0 - 1e-9);
    }

    #[test]
    fn dp_timeout_maps_to_ordering_error() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..24)
            .map(|i| c.add_table(format!("T{i}"), 10.0))
            .collect();
        let q = Query::new(ids);
        let out = DpOptimizer::default().order(
            &c,
            &q,
            &OrderingOptions::with_time_limit(Duration::from_nanos(1)),
        );
        match out {
            Err(OrderingError::Timeout) => {}
            Ok(r) => r.plan.validate(&q).unwrap(), // absurdly fast machine
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dp_memory_limit_maps_to_resource_error() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..30)
            .map(|i| c.add_table(format!("T{i}"), 10.0))
            .collect();
        let q = Query::new(ids);
        let dp = DpOptimizer {
            memory_budget_bytes: 1 << 20,
            ..Default::default()
        };
        match dp.order(&c, &q, &OrderingOptions::default()) {
            Err(OrderingError::ResourceLimit(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
