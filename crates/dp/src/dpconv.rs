//! # DPconv-style subset DP for C_out-shaped objectives
//!
//! A layered min-plus DP over table subsets, after DPconv (Stoian &
//! Kipf, arXiv 2409.08013), specialized to the objective family where it
//! is *exact*: cost functions that decompose as a **per-subset weight**,
//! independent of how the subset was assembled. The paper's C_out model is
//! the canonical member — a join producing result set `S` costs
//! `Card(S)` whenever `S` is an intermediate result and `0` for the final
//! result, so any left-deep prefix chain `S_1 ⊂ S_2 ⊂ … ⊂ S_n` costs
//! `Σ w(S_k)` with
//!
//! ```text
//! w(S) = Card(S)   if 2 <= |S| < n        (an intermediate result)
//! w(S) = 0         if |S| == 1 or |S| == n
//! ```
//!
//! The classical DP ([`crate::optimize`]) evaluates the cost model per
//! *split* — `O(2^n · n)` estimator calls, each walking the predicate
//! list. Under subset decomposability the split argument vanishes and the
//! recurrence collapses to one weight per subset plus a min-plus sweep of
//! word-sized loads:
//!
//! ```text
//! g(S) = w(S) + min over t in S of g(S \ {t})
//! ```
//!
//! This kernel exploits that three ways:
//!
//! 1. **One cardinality per subset, computed incrementally.** Subsets are
//!    enumerated in ascending numeric order (which linearizes the popcount
//!    layers of the convolution view: every proper subset precedes its
//!    supersets), and `log10 Card(S)` is extended from the predecessor
//!    `S \ {lowest bit}` by the predecessor table's log-cardinality plus
//!    exactly the predicate/group factors that become applicable at `S` —
//!    each factor is anchored at its mask's lowest table, so it is counted
//!    exactly once along each removal chain. Total estimator work drops
//!    from `O(2^n · n · |preds|)` to `O(2^n + 2^n · amortized-factors)`.
//! 2. **Min-plus over the layer is pure array traffic.** The inner `min`
//!    reads `n` precomputed `g` entries; no cost-model evaluation happens
//!    per split.
//! 3. **Threshold pruning on a quantized cost grid.** DPconv's fast
//!    instantiation replaces min-plus by Boolean "reachable under
//!    threshold" convolutions over a quantized value grid. The same idea
//!    appears here as a sound prune: a greedy plan gives an upper bound,
//!    rounded *up* to the next rung of a geometric grid, and any state
//!    whose partial sum exceeds that rung is dropped (weights are
//!    non-negative, so no completion of a dropped state can beat the bound,
//!    and every prefix of the greedy chain survives, keeping the full set
//!    reachable). On selective workloads this blanks large parts of the
//!    lattice before their supersets are even scored.
//!
//! ## Applicability — and honest refusal
//!
//! The collapse is only correct when the objective is subset-decomposable:
//!
//! * **Cost model**: C_out only. Hash / sort-merge / block-nested-loop
//!   costs depend on `(outer, inner)` — the split — and a configuration
//!   requesting them is rejected as `InvalidConfig` by
//!   [`DpConvOptimizer`]; this kernel is never silently run on them.
//! * **Expensive predicates**: a per-tuple evaluation charge is levied on
//!   the join that first makes the predicate applicable, which depends on
//!   the assembly order, not the subset. Queries carrying one are rejected
//!   as `InvalidQuery`.
//!
//! The full DPconv result — a super-polynomial speedup via subset
//! convolution in `Õ(2^n · W)` for W quantized cost levels — targets
//! bushy plan spaces, where the recurrence joins two DP sets. The
//! left-deep space here has a singleton right argument, so the convolution
//! degenerates to the linear layer sweep above; what this backend inherits
//! from DPconv is the subset-decomposable weight view, the layered
//! evaluation order, and the quantized-threshold prune, not the
//! super-polynomial bound. The [`crate::optimize`] baseline stays the
//! reference for every other cost model.

use milpjoin_qopt::cost::{plan_cost_with_estimator, CostModelKind, CostParams};
use milpjoin_qopt::orderer::{
    CostTrace, JoinOrderer, OrderingError, OrderingOptions, OrderingOutcome,
};
use milpjoin_qopt::{Catalog, Estimator, LeftDeepPlan, Query, TableSet};

use crate::{greedy_order, DpError, DpOptions, DpResult};

/// Relative rung spacing of the quantized threshold grid: the greedy upper
/// bound is rounded up to the next rung, so pruning can never cut a state
/// whose true completion ties the bound within one rung.
const GRID_RATIO: f64 = 1e-6;

/// Rounds a non-negative cost up to the next rung of the geometric
/// threshold grid (`(1 + GRID_RATIO)^k`). Non-finite and zero bounds pass
/// through unchanged (a zero bound admits only zero-cost states, which is
/// exactly right: weights are non-negative).
fn quantize_up(cost: f64) -> f64 {
    if !cost.is_finite() || cost <= 0.0 {
        return cost;
    }
    let k = (cost.ln() / (1.0 + GRID_RATIO).ln()).ceil();
    (1.0 + GRID_RATIO).powf(k).max(cost)
}

/// DPconv-style subset DP for the C_out objective. Same contract as
/// [`crate::optimize`] — optimal or an honest error — restricted to
/// subset-decomposable inputs: the caller must have verified the cost
/// model is [`CostModelKind::Cout`] and the query carries no expensive
/// predicates ([`DpConvOptimizer`] does both).
pub fn optimize_conv(
    catalog: &Catalog,
    query: &Query,
    options: &DpOptions,
) -> Result<DpResult, DpError> {
    let start = milpjoin_shim::time::now();
    let n = query.num_tables();
    if n == 0 || n > 63 {
        return Err(DpError::InvalidQuery);
    }
    if n == 1 {
        return Ok(DpResult {
            plan: LeftDeepPlan::from_order(query.tables.clone()),
            cost: 0.0,
            states: 1,
            elapsed: start.elapsed(),
        });
    }

    // Memory check before allocating 2^n entries: g (8) + incremental
    // log-cardinality (8) + reconstruction choice (1) = 17 bytes/state.
    let num_sets: u64 = 1u64 << n;
    let required = num_sets * (2 * std::mem::size_of::<f64>() as u64 + 1);
    if required > options.memory_budget_bytes {
        return Err(DpError::MemoryLimit {
            required_bytes: required,
            budget_bytes: options.memory_budget_bytes,
        });
    }

    let est = Estimator::new(catalog, query);

    // Factor anchoring for the incremental cardinality: every applicable
    // factor of `S` whose lowest table is `low(S)` is *not* applicable in
    // the predecessor `S \ {low(S)}`, and every other applicable factor
    // already is (a factor containing `low(S)` with all tables in `S` has
    // `low(S)` as its own lowest table). Anchoring each factor at its
    // mask's lowest table therefore counts it exactly once along each
    // lowest-bit removal chain. Factors with an empty mask apply to every
    // subset including singletons: they are already inside the estimator's
    // singleton values used as the chain base, so they are dropped here.
    let mut anchored: Vec<Vec<(TableSet, f64)>> = vec![Vec::new(); n];
    let factors = query
        .predicates
        .iter()
        .map(|p| {
            let mask = TableSet::from_positions(p.tables.iter().map(|&t| query.position_of(t)));
            (mask, p.log10_selectivity())
        })
        .chain(query.correlated_groups.iter().map(|g| {
            let mask = g
                .members
                .iter()
                .flat_map(|pid| &query.predicates[pid.index()].tables)
                .map(|&t| query.position_of(t))
                .fold(TableSet::EMPTY, TableSet::insert);
            (mask, g.correction.log10())
        }));
    for (mask, log_factor) in factors {
        if let Some(low) = mask.first() {
            anchored[low].push((mask, log_factor));
        }
    }
    // Raw per-table log-cardinalities for the incremental step: the
    // estimator's *singleton* value already folds in single-table and
    // empty-mask factors, which the anchored lists account for separately.
    let table_log: Vec<f64> = query
        .tables
        .iter()
        .map(|&t| catalog.log10_cardinality(t))
        .collect();

    let mut g = vec![f64::INFINITY; num_sets as usize];
    let mut logcard = vec![0.0f64; num_sets as usize];
    let mut best_last: Vec<u8> = vec![u8::MAX; num_sets as usize];

    // Base cases: singleton chains cost nothing and carry the estimator's
    // singleton log-cardinality (table log plus any factors applicable to
    // the singleton itself).
    for i in 0..n {
        let bits = TableSet::single(i).0 as usize;
        g[bits] = 0.0;
        logcard[bits] = est.log10_cardinality(TableSet::single(i));
    }

    // Quantized pruning threshold from the greedy incumbent. Every prefix
    // of the greedy chain has g <= its own partial greedy cost <= ub, so
    // the full set stays reachable under the threshold.
    let greedy = greedy_order(catalog, query, options);
    let ub = plan_cost_with_estimator(
        &est,
        catalog,
        query,
        &greedy,
        options.cost_model,
        &options.params,
    )
    .total;
    let threshold = quantize_up(ub);

    let full = TableSet::full(n);
    let mut states = 0u64;
    // Ascending numeric order linearizes the popcount layers: every subset
    // sees all of its proper subsets (both g and logcard) before itself.
    for set_bits in 1..num_sets {
        let set = TableSet(set_bits);
        let size = set.len();
        if size < 2 {
            continue;
        }
        if set_bits % 8192 == 0 {
            if let Some(d) = options.deadline {
                if milpjoin_shim::time::now() >= d {
                    return Err(DpError::Timeout);
                }
            }
        }
        // Incremental log-cardinality from the lowest-bit predecessor:
        // the predecessor's value, plus the raw log of the table that
        // re-enters, plus exactly the factors anchored at it that the
        // current set completes (single-table factors of `low` included —
        // the predecessor contains none of them).
        // audit-allow(no-panic): subset enumeration starts at singletons;
        // the empty set is never visited.
        let low = set.first().expect("non-empty set");
        let pred_bits = (set_bits & (set_bits - 1)) as usize;
        let mut lc = logcard[pred_bits] + table_log[low];
        for &(mask, log_factor) in &anchored[low] {
            if mask.is_subset_of(set) {
                lc += log_factor;
            }
        }
        logcard[set_bits as usize] = lc;

        // w(S): intermediate results cost their cardinality; the final
        // result is free (identical for every complete plan).
        let w = if set == full { 0.0 } else { 10f64.powf(lc) };

        // Min-plus over the predecessors: pure array reads, no cost-model
        // evaluation per split. Pruned predecessors read as INFINITY and
        // drop out of the min for free.
        let mut best = f64::INFINITY;
        let mut best_t = u8::MAX;
        for t in set.iter() {
            let prev = g[set.remove(t).0 as usize];
            if prev < best {
                best = prev;
                best_t = t as u8;
            }
        }
        let total = w + best;
        // Quantized-threshold prune: weights are non-negative, so no
        // completion of a state above the rung can beat the greedy bound.
        if total > threshold {
            continue;
        }
        g[set_bits as usize] = total;
        best_last[set_bits as usize] = best_t;
        states += 1;
    }

    // Reconstruct the order (identical to the classical DP).
    let mut order_rev = Vec::with_capacity(n);
    let mut cur = full;
    while cur.len() > 1 {
        let t = best_last[cur.0 as usize];
        if t == u8::MAX {
            // Unreachable: the greedy chain keeps the full set under the
            // threshold. Kept as an honest error, not a panic.
            return Err(DpError::InvalidQuery);
        }
        order_rev.push(query.tables[t as usize]);
        cur = cur.remove(t as usize);
    }
    // audit-allow(no-panic): the extraction loop above runs until
    // exactly one table remains in `cur`.
    order_rev.push(query.tables[cur.first().expect("one table left")]);
    order_rev.reverse();

    Ok(DpResult {
        plan: LeftDeepPlan::from_order(order_rev),
        cost: g[full.0 as usize],
        states,
        elapsed: start.elapsed(),
    })
}

/// The DPconv-style subset DP as a [`JoinOrderer`]. Exact — optimal plan,
/// `bound == cost`, factor 1 — on the objective family where subset
/// decomposability holds (see the [module docs](self)), and an **honest
/// refusal** everywhere else:
///
/// * configured for a non-C_out cost model → [`OrderingError::InvalidConfig`]
///   (the backend is mis-assembled, independent of any query);
/// * a query with expensive predicates → [`OrderingError::InvalidQuery`]
///   (this query's objective is not subset-decomposable).
///
/// Budget behavior matches [`crate::DpOptimizer`]: a deadline expiry is a
/// [`OrderingError::Timeout`], a table-budget blowup is a
/// [`OrderingError::ResourceLimit`].
#[derive(Debug, Clone)]
pub struct DpConvOptimizer {
    /// Must be [`CostModelKind::Cout`]; anything else makes `order` report
    /// `InvalidConfig`. Carried as a field (rather than hard-wired) so a
    /// router can interrogate `cost_model()` uniformly and tests can
    /// assemble the invalid configuration on purpose.
    pub cost_model: CostModelKind,
    pub params: CostParams,
    /// Memory budget for the DP arrays (default 4 GiB).
    pub memory_budget_bytes: u64,
}

impl Default for DpConvOptimizer {
    fn default() -> Self {
        let defaults = DpOptions::default();
        DpConvOptimizer {
            cost_model: CostModelKind::Cout,
            params: defaults.params,
            memory_budget_bytes: defaults.memory_budget_bytes,
        }
    }
}

impl DpConvOptimizer {
    pub fn new() -> Self {
        Self::default()
    }

    fn dp_options(&self, options: &OrderingOptions) -> DpOptions {
        DpOptions {
            deadline: options
                .time_limit
                .map(|limit| milpjoin_shim::time::now() + limit),
            memory_budget_bytes: self.memory_budget_bytes,
            cost_model: self.cost_model,
            params: self.params,
        }
    }
}

impl JoinOrderer for DpConvOptimizer {
    fn name(&self) -> &'static str {
        "dpconv"
    }

    fn cost_model(&self) -> (CostModelKind, CostParams) {
        (self.cost_model, self.params)
    }

    fn order(
        &self,
        catalog: &Catalog,
        query: &Query,
        options: &OrderingOptions,
    ) -> Result<OrderingOutcome, OrderingError> {
        if self.cost_model != CostModelKind::Cout {
            return Err(OrderingError::InvalidConfig(format!(
                "DPconv requires a subset-decomposable objective: cost model {} \
                 depends on the join split, use the classical DP instead",
                self.cost_model.name()
            )));
        }
        query
            .validate(catalog)
            .map_err(|e| OrderingError::InvalidQuery(e.to_string()))?;
        if query.predicates.iter().any(|p| p.eval_cost_per_tuple > 0.0) {
            return Err(OrderingError::InvalidQuery(
                "expensive predicates charge the join that first evaluates them, \
                 which depends on the assembly order: the objective is not \
                 subset-decomposable and DPconv does not apply"
                    .into(),
            ));
        }
        let res =
            optimize_conv(catalog, query, &self.dp_options(options)).map_err(|e| match e {
                DpError::Timeout => OrderingError::Timeout,
                DpError::MemoryLimit { .. } => OrderingError::ResourceLimit(e.to_string()),
                DpError::InvalidQuery => OrderingError::InvalidQuery(e.to_string()),
            })?;
        // Exact optimality: the cost is also the cost-space lower bound.
        Ok(OrderingOutcome {
            trace: CostTrace::single(res.elapsed, res.cost, Some(res.cost)),
            plan: res.plan,
            cost: res.cost,
            objective: res.cost,
            bound: Some(res.cost),
            proven_optimal: true,
            elapsed: res.elapsed,
            search: Default::default(),
            route: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use milpjoin_qopt::cost::plan_cost;
    use milpjoin_qopt::Predicate;

    fn example() -> (Catalog, Query) {
        let mut c = Catalog::new();
        let r = c.add_table("R", 10.0);
        let s = c.add_table("S", 1000.0);
        let t = c.add_table("T", 100.0);
        let mut q = Query::new(vec![r, s, t]);
        q.add_predicate(Predicate::binary(r, s, 0.1));
        (c, q)
    }

    fn assert_matches_dp(c: &Catalog, q: &Query) {
        let opts = DpOptions::default();
        let conv = optimize_conv(c, q, &opts).unwrap();
        let dp = optimize(c, q, &opts).unwrap();
        conv.plan.validate(q).unwrap();
        let rel = 1e-9 * (1.0 + dp.cost.abs());
        assert!(
            (conv.cost - dp.cost).abs() <= rel,
            "dpconv {} vs dp {}",
            conv.cost,
            dp.cost
        );
        // The reported cost is the exact cost of the reported plan.
        let pc = plan_cost(c, q, &conv.plan, CostModelKind::Cout, &opts.params).total;
        assert!(
            (pc - conv.cost).abs() <= rel,
            "plan {pc} vs dp table {}",
            conv.cost
        );
    }

    #[test]
    fn agrees_with_dp_on_the_paper_example() {
        let (c, q) = example();
        assert_matches_dp(&c, &q);
    }

    #[test]
    fn agrees_with_dp_with_correlated_groups() {
        let mut c = Catalog::new();
        let r = c.add_table("R", 100.0);
        let s = c.add_table("S", 200.0);
        let t = c.add_table("T", 50.0);
        let mut q = Query::new(vec![r, s, t]);
        let p1 = q.add_predicate(Predicate::binary(r, s, 0.1));
        let p2 = q.add_predicate(Predicate::binary(r, s, 0.2));
        q.add_predicate(Predicate::binary(s, t, 0.05));
        q.add_correlated_group(vec![p1, p2], 5.0);
        assert_matches_dp(&c, &q);
    }

    #[test]
    fn agrees_with_dp_with_nary_predicates() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..5)
            .map(|i| c.add_table(format!("T{i}"), 10.0 + 37.0 * i as f64))
            .collect();
        let mut q = Query::new(ids.clone());
        q.add_predicate(Predicate::binary(ids[0], ids[1], 0.1));
        q.add_predicate(Predicate::nary(vec![ids[1], ids[2], ids[3]], 0.01));
        q.add_predicate(Predicate::binary(ids[3], ids[4], 0.5));
        assert_matches_dp(&c, &q);
    }

    #[test]
    fn singletons_and_pairs() {
        let mut c = Catalog::new();
        let r = c.add_table("R", 50.0);
        let q1 = Query::new(vec![r]);
        let res = optimize_conv(&c, &q1, &DpOptions::default()).unwrap();
        assert_eq!(res.plan.order, vec![r]);
        assert_eq!(res.cost, 0.0);

        let s = c.add_table("S", 20.0);
        let q2 = Query::new(vec![r, s]);
        let res2 = optimize_conv(&c, &q2, &DpOptions::default()).unwrap();
        assert_eq!(res2.plan.order.len(), 2);
        assert_eq!(res2.cost, 0.0);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut c = Catalog::new();
        let ids: Vec<_> = (0..30)
            .map(|i| c.add_table(format!("T{i}"), 10.0))
            .collect();
        let q = Query::new(ids);
        let opts = DpOptions {
            memory_budget_bytes: 1 << 20,
            ..Default::default()
        };
        match optimize_conv(&c, &q, &opts) {
            Err(DpError::MemoryLimit { .. }) => {}
            other => panic!("expected memory limit, got {other:?}"),
        }
    }

    #[test]
    fn non_cout_configuration_is_invalid_config() {
        let (c, q) = example();
        let backend = DpConvOptimizer {
            cost_model: CostModelKind::Hash,
            ..Default::default()
        };
        match backend.order(&c, &q, &OrderingOptions::default()) {
            Err(OrderingError::InvalidConfig(msg)) => {
                assert!(msg.contains("subset-decomposable"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn expensive_predicates_are_invalid_query() {
        let (c, mut q) = example();
        q.predicates[0].eval_cost_per_tuple = 3.0;
        match DpConvOptimizer::default().order(&c, &q, &OrderingOptions::default()) {
            Err(OrderingError::InvalidQuery(msg)) => {
                assert!(msg.contains("subset-decomposable"), "{msg}");
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn through_the_trait_with_certificates() {
        let (c, q) = example();
        let out = DpConvOptimizer::default()
            .order(&c, &q, &OrderingOptions::default())
            .unwrap();
        out.plan.validate(&q).unwrap();
        assert!(out.proven_optimal);
        assert_eq!(out.bound, Some(out.cost));
        assert_eq!(out.guaranteed_factor(), Some(1.0));
        assert!((out.cost - 1000.0).abs() < 1e-6);
        assert_eq!(out.trace.points().len(), 1);
        assert!(out.route.is_none());
    }

    #[test]
    fn randomized_agreement_with_dp() {
        // Deterministic pseudo-random chains/stars with varied
        // cardinalities and selectivities: the DPconv optimum must match
        // the classical DP on every instance.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..20 {
            let n = 3 + (next() % 6) as usize; // 3..=8 tables
            let mut c = Catalog::new();
            let ids: Vec<_> = (0..n)
                .map(|i| c.add_table(format!("T{i}"), 2.0 + (next() % 100_000) as f64))
                .collect();
            let mut q = Query::new(ids.clone());
            if case % 2 == 0 {
                for i in 0..n - 1 {
                    let sel = ((next() % 999) + 1) as f64 / 1000.0;
                    q.add_predicate(Predicate::binary(ids[i], ids[i + 1], sel));
                }
            } else {
                for i in 1..n {
                    let sel = ((next() % 999) + 1) as f64 / 1000.0;
                    q.add_predicate(Predicate::binary(ids[0], ids[i], sel));
                }
            }
            assert_matches_dp(&c, &q);
        }
    }

    #[test]
    fn quantize_up_is_monotone_and_tight() {
        for &v in &[1e-12, 0.5, 1.0, 1000.0, 3.7e18] {
            let r = quantize_up(v);
            assert!(r >= v);
            assert!(r <= v * (1.0 + 2.0 * GRID_RATIO), "{v} -> {r}");
        }
        assert_eq!(quantize_up(0.0), 0.0);
        assert_eq!(quantize_up(f64::INFINITY), f64::INFINITY);
    }
}
