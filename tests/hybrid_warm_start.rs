//! Warm-start behaviour of the hybrid optimizer (the acceptance surface of
//! the greedy → MILP pipeline): the anytime trace must open with an
//! incumbent — the greedy seed installed as root incumbent — before any
//! bound-only events, even on queries where cold MILP needs seconds to find
//! its first feasible plan.

use std::time::Duration;

use milpjoin::{
    warm_start_assignment, EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer,
    OptimizeOptions, OrderingOptions, Precision,
};
use milpjoin_dp::GreedyOptimizer;
use milpjoin_workloads::{Topology, WorkloadSpec};

/// The ISSUE's acceptance criterion: on a 10-table star workload the
/// hybrid's trace has an incumbent at its *first* point (warm start
/// observable at t ≈ 0).
#[test]
fn ten_table_star_trace_opens_with_incumbent() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 10).generate(42);
    let hybrid = HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low));
    let out = hybrid
        .order(
            &catalog,
            &query,
            &OrderingOptions::with_time_limit(Duration::from_secs(8)),
        )
        .unwrap();
    out.plan.validate(&query).unwrap();
    let first = out.trace.points().first().expect("trace must not be empty");
    assert!(
        first.incumbent.is_some(),
        "warm start must install the greedy incumbent before any bound event"
    );
    // The warm start lands before the solve does anything expensive.
    assert!(
        first.elapsed < Duration::from_secs(5),
        "incumbent too late: {:?}",
        first.elapsed
    );
}

/// The root incumbent *is* the greedy plan: with a zero node limit the MILP
/// can do nothing but return the warm-start incumbent, whose exact cost
/// must equal the greedy plan's cost.
#[test]
fn root_incumbent_equals_greedy_objective() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 8).generate(7);
    let config = EncoderConfig::default().precision(Precision::Medium);
    let greedy = GreedyOptimizer::new(config.cost_model)
        .order(&catalog, &query, &OrderingOptions::default())
        .unwrap();

    let options = OptimizeOptions {
        node_limit: Some(0),
        initial_plan: Some(greedy.plan.clone()),
        ..Default::default()
    };
    let out = MilpOptimizer::new(config)
        .optimize(&catalog, &query, &options)
        .unwrap();
    assert_eq!(out.nodes, 0, "node limit must keep the search at the root");
    assert_eq!(
        out.plan.order, greedy.plan.order,
        "decoded root incumbent is the seed plan"
    );
    assert!(
        (out.true_cost - greedy.cost).abs() <= 1e-6 * (1.0 + greedy.cost.abs()),
        "root incumbent cost {} != greedy cost {}",
        out.true_cost,
        greedy.cost
    );
}

/// The hint covers every binary the plan determines, so the solver accepts
/// it without a single branch-and-bound node — across topologies and
/// precisions.
#[test]
fn warm_start_assignment_is_always_feasible() {
    for topo in Topology::PAPER {
        for precision in [Precision::Low, Precision::High] {
            let (catalog, query) = WorkloadSpec::new(topo, 6).generate(11);
            let config = EncoderConfig::default().precision(precision);
            let encoding = milpjoin::encode(&catalog, &query, &config).unwrap();
            let greedy = GreedyOptimizer::new(config.cost_model)
                .order(&catalog, &query, &OrderingOptions::default())
                .unwrap();
            let hints = warm_start_assignment(&encoding, &catalog, &query, &greedy.plan).unwrap();
            // Hinted values are binary and cover the join-order variables.
            assert!(hints.iter().all(|&(_, v)| v == 0.0 || v == 1.0));
            let n = query.num_tables();
            assert!(hints.len() >= 2 * n * (n - 1));

            let options = OptimizeOptions {
                node_limit: Some(0),
                initial_plan: Some(greedy.plan.clone()),
                ..Default::default()
            };
            let out = MilpOptimizer::new(config)
                .optimize(&catalog, &query, &options)
                .unwrap();
            assert_eq!(
                out.plan.order, greedy.plan.order,
                "{topo:?}/{precision:?}: hint rejected"
            );
        }
    }
}

/// An invalid initial plan is a caller bug and must be reported, not
/// silently ignored.
#[test]
fn invalid_initial_plan_is_an_error() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 4).generate(0);
    let bad = milpjoin_qopt::LeftDeepPlan::from_order(vec![query.tables[0], query.tables[1]]);
    let options = OptimizeOptions {
        initial_plan: Some(bad),
        ..Default::default()
    };
    let err = MilpOptimizer::with_defaults()
        .optimize(&catalog, &query, &options)
        .unwrap_err();
    assert!(err.to_string().contains("invalid initial plan"), "{err}");
}

/// Exhausting the node budget without a time limit is a resource-limit
/// error, not a "timeout" (there was no clock to run out).
#[test]
fn node_budget_exhaustion_is_not_a_timeout() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 6).generate(0);
    let err = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low))
        .order(
            &catalog,
            &query,
            &OrderingOptions {
                node_limit: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, milpjoin::OrderingError::ResourceLimit(_)),
        "expected ResourceLimit, got {err:?}"
    );
}

/// Encoder configuration errors surface as InvalidConfig, not as a problem
/// with the (perfectly fine) query.
#[test]
fn config_errors_are_not_query_errors() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 4).generate(0);
    let config = EncoderConfig {
        interesting_orders: true, // requires operator_selection
        operator_selection: false,
        ..Default::default()
    };
    let err = MilpOptimizer::new(config)
        .order(&catalog, &query, &OrderingOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, milpjoin::OrderingError::InvalidConfig(_)),
        "expected InvalidConfig, got {err:?}"
    );
}

/// An invalid query must surface as an error from the hybrid too — not a
/// panic in the greedy seeding that runs before the MILP's own validation.
#[test]
fn hybrid_rejects_invalid_queries_without_panicking() {
    let catalog = milpjoin_qopt::Catalog::new(); // empty: query tables unknown
    let mut other = milpjoin_qopt::Catalog::new();
    let r = other.add_table("R", 10.0);
    let s = other.add_table("S", 20.0);
    let query = milpjoin_qopt::Query::new(vec![r, s]);
    let err = HybridOptimizer::with_defaults()
        .order(&catalog, &query, &OrderingOptions::default())
        .unwrap_err();
    assert!(
        matches!(err, milpjoin::OrderingError::InvalidQuery(_)),
        "expected InvalidQuery, got {err:?}"
    );
}

/// The hybrid's guaranteed contract, across seeds: its exact cost never
/// exceeds its greedy seed's (the safety net), and the trace always opens
/// with an incumbent. (No bound against a *cold* MILP run is asserted —
/// MILP-space ties can legitimately decode differently between two
/// searches, so that property is not guaranteed.)
#[test]
fn hybrid_contract_across_seeds() {
    for seed in 0..4u64 {
        let (catalog, query) = WorkloadSpec::new(Topology::Chain, 7).generate(seed);
        let config = EncoderConfig::default().precision(Precision::Low);
        let options = OrderingOptions::with_time_limit(Duration::from_secs(20));
        let greedy = GreedyOptimizer::new(config.cost_model)
            .order(&catalog, &query, &options)
            .unwrap();
        let warm = HybridOptimizer::new(config)
            .order(&catalog, &query, &options)
            .unwrap();
        warm.plan.validate(&query).unwrap();
        assert!(
            warm.cost <= greedy.cost * (1.0 + 1e-9),
            "seed {seed}: hybrid {} worse than its greedy seed {}",
            warm.cost,
            greedy.cost
        );
        let first = warm.trace.points().first().expect("non-empty trace");
        assert!(
            first.incumbent.is_some(),
            "seed {seed}: trace must open with the warm start"
        );
    }
}
