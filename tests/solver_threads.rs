//! Acceptance tests for intra-solve parallelism (`solver_threads`): the
//! default single-threaded configuration must be bit-identical to an
//! explicit `solver_threads(1)` (and `0`), and multi-threaded solves
//! under a non-binding global node budget must reach the single-threaded
//! optimum with the optimality certificate intact and a monotone anytime
//! trace.
//!
//! The streams mirror `executor_parallel.rs`: mixed chain/cycle/star
//! traffic over one shared catalog, solved by the real hybrid backend.

use milpjoin::{
    EncoderConfig, HybridOptimizer, MilpOptimizer, OptimizeOptions, PlanSession, Precision,
};
use milpjoin_milp::SolveStatus;
use milpjoin_qopt::{Catalog, OrderingOptions, Query, SessionOutcome};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;
use std::time::Duration;

fn backend() -> HybridOptimizer {
    HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low))
}

fn base_options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(20))
}

/// A mixed-topology stream over one catalog: `unique` random structures
/// per topology, each `copies` times, round-robin across topologies.
fn mixed_stream(seed: u64, tables: usize, unique: usize, copies: usize) -> (Catalog, Vec<Query>) {
    let mut catalog = Catalog::new();
    let per_topology: Vec<Vec<Query>> = [Topology::Chain, Topology::Cycle, Topology::Star]
        .into_iter()
        .enumerate()
        .map(|(i, topo)| {
            WorkloadSpec::new(topo, tables).generate_stream_into(
                &mut catalog,
                seed + 1000 * i as u64,
                unique,
                copies,
            )
        })
        .collect();
    let len = per_topology.iter().map(Vec::len).max().unwrap_or(0);
    let mut queries = Vec::new();
    for i in 0..len {
        for stream in &per_topology {
            if let Some(q) = stream.get(i) {
                queries.push(q.clone());
            }
        }
    }
    (catalog, queries)
}

fn solve_stream(
    catalog: &Catalog,
    queries: &[Query],
    options: OrderingOptions,
) -> Vec<SessionOutcome> {
    let mut session = PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options);
    session
        .optimize_batch(queries)
        .into_iter()
        .map(|r| r.expect("hybrid always produces a plan"))
        .collect()
}

/// Bit-identical comparison: same solve, same exact re-costing, same
/// anytime trace (timings excluded — they are wall-clock by nature).
fn assert_bit_identical(label: &str, a: &SessionOutcome, b: &SessionOutcome) {
    assert_eq!(a.outcome.plan, b.outcome.plan, "{label}: plan");
    assert_eq!(
        a.outcome.cost.to_bits(),
        b.outcome.cost.to_bits(),
        "{label}: cost"
    );
    assert_eq!(
        a.outcome.objective.to_bits(),
        b.outcome.objective.to_bits(),
        "{label}: objective"
    );
    assert_eq!(
        a.outcome.bound.map(f64::to_bits),
        b.outcome.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        a.outcome.proven_optimal, b.outcome.proven_optimal,
        "{label}: proven_optimal"
    );
    assert_eq!(a.outcome.search, b.outcome.search, "{label}: search stats");
    let (ta, tb) = (a.outcome.trace.points(), b.outcome.trace.points());
    assert_eq!(ta.len(), tb.len(), "{label}: trace length");
    for (i, (pa, pb)) in ta.iter().zip(tb).enumerate() {
        assert_eq!(
            pa.incumbent.map(f64::to_bits),
            pb.incumbent.map(f64::to_bits),
            "{label}: trace[{i}] incumbent"
        );
        assert_eq!(
            pa.bound.map(f64::to_bits),
            pb.bound.map(f64::to_bits),
            "{label}: trace[{i}] bound"
        );
    }
    assert_eq!(a.cache_hit, b.cache_hit, "{label}: cache_hit");
    assert_eq!(a.exact_hit, b.exact_hit, "{label}: exact_hit");
}

/// Streamed incumbents must never increase and bounds must be honest:
/// every claimed cost-space bound at or below the incumbent of its point.
fn assert_trace_monotone(label: &str, outcome: &SessionOutcome) {
    let mut last_incumbent = f64::INFINITY;
    for (i, p) in outcome.outcome.trace.points().iter().enumerate() {
        if let Some(inc) = p.incumbent {
            assert!(
                inc <= last_incumbent * (1.0 + 1e-12) + 1e-12,
                "{label}: trace[{i}] incumbent {inc} above previous {last_incumbent}"
            );
            last_incumbent = inc;
            if let Some(bound) = p.bound {
                assert!(
                    bound <= inc * (1.0 + 1e-9) + 1e-9,
                    "{label}: trace[{i}] bound {bound} above incumbent {inc}"
                );
            }
        }
    }
}

/// The default configuration (no `solver_threads` set) and explicit
/// `0`/`1` all take the sequential code path and must be bit-identical —
/// the regression guard that adding the parallel search changed nothing
/// for existing callers.
#[test]
fn default_and_explicit_single_thread_are_bit_identical() {
    let (catalog, queries) = mixed_stream(11, 5, 2, 2);
    let expected = solve_stream(&catalog, &queries, base_options());
    for threads in [0usize, 1] {
        let got = solve_stream(&catalog, &queries, base_options().solver_threads(threads));
        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_bit_identical(&format!("threads={threads} query={i}"), e, g);
        }
    }
}

/// Multi-threaded solves under a non-binding global node budget must
/// reach the single-threaded MILP optimum — identical optimal objective
/// and a gap-closed bound equal to it — run the requested worker count,
/// and stream a monotone trace.
///
/// The comparison is in MILP objective space: the decoded *plan* (and
/// hence its exact re-costed value) may legitimately differ between
/// thread counts when the coarse `Precision::Low` objective has ties —
/// all proven-optimal solves agree on the objective, not on which of the
/// tied assignments the search happened to keep.
#[test]
fn multi_threaded_solves_reach_single_threaded_optimum() {
    let (catalog, queries) = mixed_stream(29, 5, 2, 1);
    let opt = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low));
    let budget = 200_000u64; // far above what these solves need
    let options = |threads: usize| OptimizeOptions {
        node_limit: Some(budget),
        threads,
        ..OptimizeOptions::default()
    };
    for (i, query) in queries.iter().enumerate() {
        let seq = opt.optimize(&catalog, query, &options(1)).unwrap();
        assert_eq!(seq.status, SolveStatus::Optimal, "query={i}: sequential");
        for threads in [2usize, 4] {
            let label = format!("threads={threads} query={i}");
            let par = opt.optimize(&catalog, query, &options(threads)).unwrap();
            assert_eq!(par.status, SolveStatus::Optimal, "{label}: status");
            assert!(
                (par.milp_objective - seq.milp_objective).abs()
                    <= 1e-9 * (1.0 + seq.milp_objective.abs()),
                "{label}: objective {} differs from sequential optimum {}",
                par.milp_objective,
                seq.milp_objective
            );
            // A gap-closed solve reports its incumbent as the final bound.
            assert_eq!(
                par.milp_bound.to_bits(),
                par.milp_objective.to_bits(),
                "{label}: bound must close on the objective"
            );
            assert!(par.cost_bound.is_some(), "{label}: cost-space bound");
            assert!(
                par.true_cost >= par.cost_bound.unwrap() * (1.0 - 1e-9),
                "{label}: exact cost below its claimed cost-space bound"
            );
            assert_eq!(par.search.workers_used, threads, "{label}: worker count");
            assert!(
                par.search.nodes_expanded > 0,
                "{label}: cold solve must expand nodes"
            );
            let mut last = f64::INFINITY;
            for (j, p) in par.cost_trace.points().iter().enumerate() {
                if let Some(inc) = p.incumbent {
                    assert!(
                        inc <= last * (1.0 + 1e-12) + 1e-12,
                        "{label}: trace[{j}] incumbent {inc} above previous {last}"
                    );
                    last = inc;
                }
            }
        }
    }
}

/// `deterministic_budget` meters nodes globally across workers: the
/// total expanded never exceeds the budget plus each worker's in-flight
/// plunge (budget checks run between plunges, so one worker can overrun
/// by at most `max_dive_depth + 1` nodes — the same slack the sequential
/// search always had).
#[test]
fn node_budget_is_metered_globally_across_workers() {
    let (catalog, queries) = mixed_stream(3, 6, 1, 1);
    let budget = 4u64;
    let per_worker_slack = 64 + 1; // default `max_dive_depth` + the pop itself
    for threads in [1usize, 4] {
        let got = solve_stream(
            &catalog,
            &queries,
            base_options()
                .deterministic_budget(budget)
                .solver_threads(threads),
        );
        for (i, g) in got.iter().enumerate() {
            let nodes = g.outcome.search.nodes_expanded;
            assert!(
                nodes <= budget + (threads as u64) * per_worker_slack,
                "threads={threads} query={i}: {nodes} nodes expanded under budget {budget}"
            );
            assert_trace_monotone(&format!("threads={threads} query={i}"), g);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized streams: explicit `solver_threads(1)` stays bit-identical
    /// to the default configuration on arbitrary mixed traffic.
    #[test]
    fn random_streams_single_thread_identity(
        (seed, tables, copies) in (0u64..500, 3usize..=5, 1usize..=2)
    ) {
        let (catalog, queries) = mixed_stream(seed, tables, 2, copies);
        let expected = solve_stream(&catalog, &queries, base_options());
        let got = solve_stream(&catalog, &queries, base_options().solver_threads(1));
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_bit_identical(&format!("query={i}"), e, g);
        }
    }

    /// Randomized streams: multi-threaded solves agree with the sequential
    /// MILP optimum and keep their certificates (objective-space
    /// comparison — see `multi_threaded_solves_reach_single_threaded_optimum`).
    #[test]
    fn random_streams_multi_thread_optimum(
        (seed, tables, threads) in (0u64..500, 3usize..=5, 2usize..=4)
    ) {
        let (catalog, queries) = mixed_stream(seed, tables, 2, 1);
        let opt = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low));
        for (i, query) in queries.iter().enumerate() {
            let seq = opt.optimize(&catalog, query, &OptimizeOptions::default()).unwrap();
            let par = opt.optimize(&catalog, query, &OptimizeOptions {
                threads,
                ..OptimizeOptions::default()
            }).unwrap();
            prop_assert_eq!(seq.status, par.status, "query={} status", i);
            if seq.status == SolveStatus::Optimal {
                prop_assert!(
                    (par.milp_objective - seq.milp_objective).abs()
                        <= 1e-9 * (1.0 + seq.milp_objective.abs()),
                    "query={}: objective {} vs sequential {}",
                    i, par.milp_objective, seq.milp_objective
                );
            }
        }
    }
}
