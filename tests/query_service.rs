//! Acceptance tests for the continuous-ingest `QueryService`: concurrent
//! identical submissions collapse onto exactly one backend solve (the
//! cross-batch in-flight table), mixed streams resolve bit-identical to
//! the sequential `PlanSession`, lifecycle calls leave no stuck tickets,
//! and the deterministic node budget makes budget-limited solves
//! worker-count-invariant under CPU oversubscription.

use std::time::Duration;

use milpjoin::{
    EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer, OrderingError, OrderingOptions,
    ParallelSession, PlanSession, Precision, QueryService, SessionOutcome,
};
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;

fn backend() -> HybridOptimizer {
    HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low))
}

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(20))
}

/// A mixed-topology stream over one catalog: `unique` random structures
/// per topology, each `copies` times, round-robin across topologies.
fn mixed_stream(seed: u64, tables: usize, unique: usize, copies: usize) -> (Catalog, Vec<Query>) {
    let mut catalog = Catalog::new();
    let per_topology: Vec<Vec<Query>> = [Topology::Chain, Topology::Cycle, Topology::Star]
        .into_iter()
        .enumerate()
        .map(|(i, topo)| {
            WorkloadSpec::new(topo, tables).generate_stream_into(
                &mut catalog,
                seed + 1000 * i as u64,
                unique,
                copies,
            )
        })
        .collect();
    let len = per_topology.iter().map(Vec::len).max().unwrap_or(0);
    let mut queries = Vec::new();
    for i in 0..len {
        for stream in &per_topology {
            if let Some(q) = stream.get(i) {
                queries.push(q.clone());
            }
        }
    }
    (catalog, queries)
}

/// Asserts two session outcomes are result-identical (timings excluded:
/// `elapsed` and trace timestamps are wall-clock by nature).
fn assert_outcomes_identical(label: &str, seq: &SessionOutcome, got: &SessionOutcome) {
    assert_eq!(seq.outcome.plan, got.outcome.plan, "{label}: plan");
    assert_eq!(
        seq.outcome.cost.to_bits(),
        got.outcome.cost.to_bits(),
        "{label}: cost {} vs {}",
        seq.outcome.cost,
        got.outcome.cost
    );
    assert_eq!(
        seq.outcome.objective.to_bits(),
        got.outcome.objective.to_bits(),
        "{label}: objective"
    );
    assert_eq!(
        seq.outcome.bound.map(f64::to_bits),
        got.outcome.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        seq.outcome.proven_optimal, got.outcome.proven_optimal,
        "{label}: proven_optimal"
    );
    assert_eq!(seq.cache_hit, got.cache_hit, "{label}: cache_hit");
    assert_eq!(seq.exact_hit, got.exact_hit, "{label}: exact_hit");
}

/// Value identity only: plan, exact cost, bound, certificate. On the raw
/// service surface *which* duplicate carries the miss is decided by the
/// claim race (exactly one per structure, but scheduling-dependent), so
/// `cache_hit`/`exact_hit`/`objective` are excluded — they differ between
/// the solver's and a hit's report of the same value-identical outcome.
fn assert_values_identical(label: &str, seq: &SessionOutcome, got: &SessionOutcome) {
    assert_eq!(seq.outcome.plan, got.outcome.plan, "{label}: plan");
    assert_eq!(
        seq.outcome.cost.to_bits(),
        got.outcome.cost.to_bits(),
        "{label}: cost {} vs {}",
        seq.outcome.cost,
        got.outcome.cost
    );
    assert_eq!(
        seq.outcome.bound.map(f64::to_bits),
        got.outcome.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        seq.outcome.proven_optimal, got.outcome.proven_optimal,
        "{label}: proven_optimal"
    );
}

/// The issue's acceptance criterion: N submitter threads racing the same
/// structure into one service trigger exactly one backend solve — the
/// in-flight table collapses every concurrent duplicate onto the leader —
/// and every ticket returns the identical plan and exact cost.
#[test]
fn concurrent_submitters_of_one_structure_share_one_solve() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 7).generate(11);
    for submitters in [2usize, 4, 8] {
        let service = QueryService::new(catalog.clone(), backend())
            .with_workers(4)
            .with_options(options());
        let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..submitters)
                .map(|_| {
                    let service = &service;
                    let query = query.clone();
                    scope.spawn(move || service.submit(query).wait().unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = service.shutdown();
        assert_eq!(
            stats.backend_solves, 1,
            "submitters={submitters}: exactly one solve"
        );
        assert_eq!(stats.inflight_leaders, 1, "submitters={submitters}");
        assert_eq!(stats.queries, submitters as u64);
        assert_eq!(stats.cache_hits, submitters as u64 - 1);
        // Wait-resolved followers are a subset of the cache hits.
        assert!(stats.inflight_wait_hits <= stats.cache_hits);
        assert!(stats.inflight_followers >= stats.inflight_wait_hits);
        for (i, out) in outcomes.iter().enumerate() {
            // Identical plan, exact cost, and certificates on every ticket
            // (`objective` legitimately differs between the solver's
            // MILP-space report and a hit's exact-cost report).
            let label = format!("submitters={submitters} ticket={i}");
            assert_eq!(out.outcome.plan, outcomes[0].outcome.plan, "{label}");
            assert_eq!(
                out.outcome.cost.to_bits(),
                outcomes[0].outcome.cost.to_bits(),
                "{label}"
            );
            assert_eq!(
                out.outcome.bound.map(f64::to_bits),
                outcomes[0].outcome.bound.map(f64::to_bits),
                "{label}"
            );
            assert_eq!(
                out.outcome.proven_optimal, outcomes[0].outcome.proven_optimal,
                "{label}"
            );
        }
        // Exactly one ticket was the solver (miss); the rest hit.
        let misses = outcomes.iter().filter(|o| !o.cache_hit).count();
        assert_eq!(misses, 1, "submitters={submitters}");
    }
}

/// Mixed-stream identity: for any submitter/worker split, every ticket's
/// plan/cost/bound/certificate is bit-identical to the sequential
/// `PlanSession` fed the same stream, each structure is solved exactly
/// once, and the aggregate accounting matches. A single-worker service
/// processes FIFO and is additionally identical down to the per-ticket
/// hit flags; with more workers the miss attribution is decided by the
/// claim race (the batch facade pins it — see `executor_parallel.rs`).
#[test]
fn service_stream_is_identical_to_sequential_session() {
    let (catalog, queries) = mixed_stream(3, 5, 2, 3); // 18 queries, 6 structures
    let mut sequential =
        PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
    let expected = sequential.optimize_batch(&queries);
    for workers in [1usize, 2, 4] {
        let service = QueryService::new(catalog.clone(), backend())
            .with_workers(workers)
            .with_options(options());
        let tickets = service.submit_many(queries.iter().cloned());
        let got: Vec<SessionOutcome> = tickets.iter().map(|t| t.wait().unwrap()).collect();
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            let e = e.as_ref().unwrap();
            let label = format!("workers={workers} query={i}");
            if workers == 1 {
                assert_outcomes_identical(&label, e, g);
            } else {
                assert_values_identical(&label, e, g);
            }
        }
        let stats = service.shutdown();
        let seq_stats = sequential.explain();
        assert_eq!(stats.backend_solves, seq_stats.backend_solves);
        assert_eq!(stats.cache_hits, seq_stats.cache_hits);
        assert_eq!(stats.exact_hits, seq_stats.exact_hits);
        // Exactly one miss per structure, whoever won the race to it.
        let misses = got.iter().filter(|o| !o.cache_hit).count() as u64;
        assert_eq!(misses, stats.backend_solves, "workers={workers}");
        // Every cacheable solve led its in-flight slot.
        assert_eq!(stats.inflight_leaders, stats.backend_solves);
    }
}

/// Lifecycle: drain resolves everything submitted, shutdown drains the
/// queue before stopping, and post-shutdown submissions resolve
/// immediately with an error — no ticket is ever left pending.
#[test]
fn drain_then_shutdown_leaves_no_stuck_tickets() {
    let (catalog, queries) = mixed_stream(17, 4, 2, 2);
    let service = QueryService::new(catalog, backend())
        .with_workers(2)
        .with_options(options());
    let tickets = service.submit_many(queries.iter().cloned());
    service.drain();
    for (i, t) in tickets.iter().enumerate() {
        assert!(t.is_done(), "ticket {i} unresolved after drain()");
        assert!(t.try_get().unwrap().is_ok(), "ticket {i}");
    }
    // More work after a drain is fine; shutdown then drains it too.
    let late = service.submit(queries[0].clone());
    let stats = service.shutdown();
    assert!(late.is_done(), "shutdown must drain accepted submissions");
    assert!(late.try_get().unwrap().unwrap().cache_hit);
    assert_eq!(stats.queries, queries.len() as u64 + 1);
}

/// The deterministic node budget: a budget-limited solve returns the
/// identical outcome at 1 and 4 workers on a CPU-oversubscribed host
/// (this container pins to one core, so 4 workers *are* oversubscription)
/// — the regression the wall-clock budget could never pass.
#[test]
fn deterministic_budget_is_worker_count_invariant() {
    let (catalog, queries) = {
        let mut catalog = Catalog::new();
        // Three copies each of two 9-table structures: big enough that a
        // 3-node budget binds (nothing proven optimal), duplicated so the
        // in-flight/dedup path is exercised under the budget.
        let queries =
            WorkloadSpec::new(Topology::Star, 9).generate_stream_into(&mut catalog, 23, 2, 3);
        (catalog, queries)
    };
    let budget_options = OrderingOptions::with_deterministic_budget(3);
    let mut sequential =
        PlanSession::new(catalog.clone(), Box::new(backend())).with_options(budget_options.clone());
    let expected = sequential.optimize_batch(&queries);
    // The budget must actually bind somewhere for the regression to mean
    // anything (an easy structure may legitimately prove optimality at
    // the root before its third node).
    assert!(
        expected
            .iter()
            .any(|e| !e.as_ref().unwrap().outcome.proven_optimal),
        "3-node budget never bound; enlarge the queries"
    );
    for workers in [1usize, 4] {
        let mut parallel =
            ParallelSession::new(catalog.clone(), backend()).with_options(budget_options.clone());
        let got = parallel.optimize_batch(&queries, workers);
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            assert_outcomes_identical(
                &format!("workers={workers} query={i}"),
                e.as_ref().unwrap(),
                g.as_ref().unwrap(),
            );
        }
    }
}

/// Budget exhaustion before any plan is a `ResourceLimit`, never a
/// `Timeout` — even when a wall-clock limit is *also* configured (the old
/// classification guessed "timeout" from the options; the solver now
/// reports which budget actually fired).
#[test]
fn deterministic_budget_exhaustion_classifies_as_resource_limit() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 6).generate(0);
    // Cold MILP (no warm start) with a zero node budget: no incumbent can
    // exist, and the clock never fires first.
    let err = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low))
        .order(
            &catalog,
            &query,
            &OrderingOptions {
                time_limit: Some(Duration::from_secs(600)),
                deterministic_budget: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, OrderingError::ResourceLimit(_)),
        "expected ResourceLimit, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized mixed streams and worker counts: every service ticket
    /// stays value-identical (plan/cost/bound/certificate) to the
    /// sequential session, with exactly one solve per structure.
    #[test]
    fn random_streams_match_sequential(
        (seed, tables, copies, workers) in (0u64..500, 3usize..=5, 1usize..=3, 1usize..=6)
    ) {
        let (catalog, queries) = mixed_stream(seed, tables, 2, copies);
        let mut sequential =
            PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
        let expected = sequential.optimize_batch(&queries);
        let service = QueryService::new(catalog, backend())
            .with_workers(workers)
            .with_options(options());
        let tickets = service.submit_many(queries.iter().cloned());
        for (i, (e, t)) in expected.iter().zip(&tickets).enumerate() {
            assert_values_identical(
                &format!("workers={workers} query={i}"),
                e.as_ref().unwrap(),
                &t.wait().unwrap(),
            );
        }
        let stats = service.shutdown();
        let seq_stats = sequential.explain();
        assert_eq!(stats.backend_solves, seq_stats.backend_solves);
        assert_eq!(stats.cache_hits, seq_stats.cache_hits);
    }
}
