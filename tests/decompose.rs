//! Acceptance tests for the decompose-and-conquer optimizer: stitched
//! plans are valid (every table joined exactly once, every predicate
//! applied by the exact coster) and never cost more than the whole-query
//! greedy construction across mixed topologies; the orchestration is
//! bit-identical at any fragment-worker count; and the router's
//! `very-large-decompose` dispatch is bit-identical to a direct solve and
//! passes arm errors through verbatim.

use std::time::Duration;

use milpjoin::{
    partition_join_graph, standard_router, BackendArm, DecomposeOptions, DecomposingOptimizer,
    EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer, OrderingError, OrderingOptions,
    OrderingOutcome, Precision, RouterOptimizer, RouterOptions,
};
use milpjoin_dp::{greedy_order, DpOptimizer, DpOptions, GreedyOptimizer};
use milpjoin_qopt::cost::{plan_cost, CostModelKind, CostParams};
use milpjoin_qopt::{Catalog, Query, TableSet};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;

fn config() -> EncoderConfig {
    EncoderConfig::default().precision(Precision::Low)
}

/// Exact cost of the whole-query greedy plan under the config's model —
/// the baseline the decompose arm must never lose to.
fn greedy_cost(catalog: &Catalog, query: &Query) -> f64 {
    let config = config();
    let dp_options = DpOptions {
        cost_model: config.cost_model,
        params: config.cost_params,
        ..DpOptions::default()
    };
    let plan = greedy_order(catalog, query, &dp_options);
    plan_cost(
        catalog,
        query,
        &plan,
        config.cost_model,
        &config.cost_params,
    )
    .total
}

/// The vendored proptest stub has no `sample::select`; draw an index into
/// [`Topology::PAPER`] instead.
fn topology() -> impl Strategy<Value = Topology> {
    (0..Topology::PAPER.len()).prop_map(|i| Topology::PAPER[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Partition invariants on random large queries: fragments are
    /// disjoint, within the size cap, and cover every table.
    #[test]
    fn partition_covers_disjointly_within_cap(
        (seed, topo, tables, cap) in (0u64..500, topology(), 20usize..=40, 4usize..=10)
    ) {
        let (_, query) = WorkloadSpec::new(topo, tables).generate(seed);
        let fragments = partition_join_graph(&query, cap);
        let mut union = TableSet::EMPTY;
        for frag in &fragments {
            prop_assert!(frag.len() <= cap, "fragment over the cap");
            prop_assert!(!union.intersects(*frag), "fragments overlap");
            union = union | *frag;
        }
        prop_assert_eq!(union, TableSet::full(tables));
    }

    /// The honesty-and-quality contract: on mixed large topologies the
    /// stitched plan validates (a permutation of all tables, so the exact
    /// coster applies every predicate), its reported cost is the exact
    /// plan cost, the outcome claims no optimality or bound, and the cost
    /// never exceeds the whole-query greedy baseline.
    #[test]
    fn stitched_plans_validate_and_never_lose_to_greedy(
        (seed, topo, tables) in (0u64..500, topology(), 20usize..=26)
    ) {
        let (catalog, query) = WorkloadSpec::new(topo, tables).generate(seed);
        let backend = DecomposingOptimizer::new(config());
        let outcome = backend
            .order(&catalog, &query, &OrderingOptions::default().deterministic_budget(40))
            .expect("decompose solves every valid query");
        outcome.plan.validate(&query).expect("stitched plan is valid");
        prop_assert!(!outcome.proven_optimal);
        prop_assert!(outcome.bound.is_none());
        let cfg = config();
        let exact = plan_cost(&catalog, &query, &outcome.plan, cfg.cost_model, &cfg.cost_params).total;
        prop_assert_eq!(outcome.cost.to_bits(), exact.to_bits(), "reported cost is the exact recost");
        let baseline = greedy_cost(&catalog, &query);
        prop_assert!(
            outcome.cost <= baseline * (1.0 + 1e-9),
            "stitched {:e} worse than greedy {:e}", outcome.cost, baseline
        );
    }

    /// Determinism at any fragment-worker count: the worker pool only
    /// changes who solves which fragment, never the result. Outcomes at
    /// 1, 2 and 4 workers match bit for bit.
    #[test]
    fn outcome_bit_identical_across_worker_counts(
        (seed, topo) in (0u64..500, topology())
    ) {
        let (catalog, query) = WorkloadSpec::new(topo, 21).generate(seed);
        let backend = DecomposingOptimizer::new(config())
            .decompose_options(DecomposeOptions::default().fragment_max_tables(6));
        let solve = |workers: usize| {
            backend
                .order(
                    &catalog,
                    &query,
                    &OrderingOptions::default()
                        .deterministic_budget(60)
                        .solver_threads(workers),
                )
                .expect("decompose solves every valid query")
        };
        let one = solve(1);
        for workers in [2usize, 4] {
            let many = solve(workers);
            prop_assert_eq!(&one.plan, &many.plan, "workers={}", workers);
            prop_assert_eq!(one.cost.to_bits(), many.cost.to_bits(), "workers={}", workers);
            prop_assert_eq!(
                one.search.nodes_expanded, many.search.nodes_expanded,
                "workers={}", workers
            );
            prop_assert_eq!(
                one.search.total_lp_iterations, many.search.total_lp_iterations,
                "workers={}", workers
            );
        }
    }
}

/// The router's `very-large-decompose` dispatch is pure: the routed
/// outcome matches a direct solve on the decompose arm bit for bit.
#[test]
fn router_decompose_dispatch_is_bit_identical() {
    let router = standard_router(config(), RouterOptions::default());
    let (catalog, query) = WorkloadSpec::new(Topology::Cycle, 22).generate(9);
    let opts = OrderingOptions::default().deterministic_budget(60);
    let routed = router.order(&catalog, &query, &opts).expect("routed solve");
    let decision = routed.route.expect("routed solve records its decision");
    assert_eq!(decision.arm, BackendArm::Decompose);
    assert_eq!(decision.rule, "very-large-decompose");
    let direct: OrderingOutcome = router
        .arm(BackendArm::Decompose)
        .expect("standard router installs the decompose arm")
        .order(&catalog, &query, &opts)
        .expect("direct solve");
    assert_eq!(routed.plan, direct.plan);
    assert_eq!(routed.cost.to_bits(), direct.cost.to_bits());
    assert_eq!(routed.objective.to_bits(), direct.objective.to_bits());
    assert_eq!(routed.proven_optimal, direct.proven_optimal);
    assert!(direct.route.is_none());
}

/// An arm that always fails with a fixed classification.
#[derive(Clone)]
struct FailingArm;

impl JoinOrderer for FailingArm {
    fn name(&self) -> &'static str {
        "failing"
    }

    fn cost_model(&self) -> (CostModelKind, CostParams) {
        (CostModelKind::Cout, CostParams::default())
    }

    fn order(
        &self,
        _catalog: &Catalog,
        _query: &Query,
        _options: &OrderingOptions,
    ) -> Result<OrderingOutcome, OrderingError> {
        Err(OrderingError::Backend("decompose arm refused".into()))
    }
}

/// When the decompose arm errors, the router passes the error through
/// verbatim — it never silently retries the query on the star fastpath,
/// the greedy arm, or any other arm, even though every one of those real
/// arms is installed and would have succeeded.
#[test]
fn router_passes_decompose_errors_through_verbatim() {
    let cfg = config();
    let router = RouterOptimizer::new(RouterOptions::default())
        .with_arm(
            BackendArm::Greedy,
            GreedyOptimizer {
                cost_model: cfg.cost_model,
                params: cfg.cost_params,
            },
        )
        .with_arm(
            BackendArm::Dp,
            DpOptimizer {
                cost_model: cfg.cost_model,
                params: cfg.cost_params,
                ..Default::default()
            },
        )
        .with_arm(BackendArm::Milp, MilpOptimizer::new(cfg.clone()))
        .with_arm(BackendArm::Hybrid, HybridOptimizer::new(cfg))
        .with_arm(BackendArm::Decompose, FailingArm);
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 24).generate(3);
    let err = router
        .order(
            &catalog,
            &query,
            &OrderingOptions::with_time_limit(Duration::from_secs(30)),
        )
        .unwrap_err();
    match err {
        OrderingError::Backend(msg) => assert_eq!(msg, "decompose arm refused"),
        other => panic!("router reclassified the arm error: {other:?}"),
    }
}
