//! Failure injection: malformed queries, degenerate sizes, and hostile
//! parameters must produce errors, never panics or wrong answers.

use std::time::Duration;

use milpjoin::{encode, EncodeError, EncoderConfig, MilpOptimizer, OptimizeOptions};
use milpjoin_dp::{optimize as dp_optimize, DpError, DpOptions};
use milpjoin_qopt::{Catalog, Predicate, Query, QueryError};
use milpjoin_workloads::{Topology, WorkloadSpec};

#[test]
fn empty_query_rejected() {
    let catalog = Catalog::new();
    let query = Query::new(vec![]);
    assert!(matches!(
        encode(&catalog, &query, &EncoderConfig::default()),
        Err(EncodeError::Query(QueryError::NoTables))
    ));
    assert!(dp_optimize(&catalog, &query, &DpOptions::default()).is_err());
}

#[test]
fn single_table_query_is_trivial_everywhere() {
    let mut catalog = Catalog::new();
    let r = catalog.add_table("R", 42.0);
    let query = Query::new(vec![r]);
    // Encoder refuses (no joins to order) ...
    assert!(matches!(
        encode(&catalog, &query, &EncoderConfig::default()),
        Err(EncodeError::TooFewTables(1))
    ));
    // ... but the optimizer facade handles it.
    let out = MilpOptimizer::with_defaults()
        .optimize(&catalog, &query, &OptimizeOptions::default())
        .unwrap();
    assert_eq!(out.plan.order, vec![r]);
}

#[test]
fn foreign_table_predicate_rejected() {
    let mut catalog = Catalog::new();
    let r = catalog.add_table("R", 10.0);
    let s = catalog.add_table("S", 10.0);
    let alien = catalog.add_table("alien", 10.0);
    let mut query = Query::new(vec![r, s]);
    query.add_predicate(Predicate::binary(r, alien, 0.5));
    assert!(encode(&catalog, &query, &EncoderConfig::default()).is_err());
}

#[test]
fn dp_memory_budget() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 30).generate(0);
    let opts = DpOptions {
        memory_budget_bytes: 1 << 16,
        ..DpOptions::default()
    };
    assert!(matches!(
        dp_optimize(&catalog, &query, &opts),
        Err(DpError::MemoryLimit { .. })
    ));
}

#[test]
fn milp_tiny_time_limit_fails_gracefully() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 10).generate(0);
    let result = MilpOptimizer::with_defaults().optimize(
        &catalog,
        &query,
        &OptimizeOptions::with_time_limit(Duration::from_millis(1)),
    );
    // Either a plan (fast machine) or a clean "no plan" error.
    if let Err(e) = result {
        let msg = e.to_string();
        assert!(
            msg.contains("no plan") || msg.contains("limit"),
            "unexpected error: {msg}"
        );
    }
}

#[test]
fn extreme_selectivities_and_cardinalities() {
    let mut catalog = Catalog::new();
    let a = catalog.add_table("A", 1.0); // minimum cardinality
    let b = catalog.add_table("B", 1e9); // huge
    let c = catalog.add_table("C", 17.0);
    let mut query = Query::new(vec![a, b, c]);
    query.add_predicate(Predicate::binary(a, b, 1e-9)); // extreme selectivity
    query.add_predicate(Predicate::binary(b, c, 1.0)); // no-op selectivity
    let out = MilpOptimizer::with_defaults()
        .optimize(
            &catalog,
            &query,
            &OptimizeOptions::with_time_limit(Duration::from_secs(20)),
        )
        .unwrap();
    out.plan.validate(&query).unwrap();
    assert!(out.true_cost.is_finite());
}

#[test]
fn workload_validates_across_sizes() {
    for topo in [
        Topology::Chain,
        Topology::Cycle,
        Topology::Star,
        Topology::Clique,
    ] {
        for n in [2usize, 3, 13, 60] {
            let (catalog, query) = WorkloadSpec::new(topo, n).generate(99);
            query.validate(&catalog).unwrap();
        }
    }
}
