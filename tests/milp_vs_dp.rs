//! Cross-backend integration through the unified [`JoinOrderer`] trait: the
//! MILP optimizer's plans must be within the configured tolerance factor of
//! the DP optimum (which is exact), per the approximation guarantee of
//! §4.2, and the greedy-warm-started hybrid must never be worse than either
//! the greedy seed or the plain MILP.

use std::time::Duration;

use milpjoin::{
    EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer, OrderingOptions, Precision,
};
use milpjoin_dp::{DpOptimizer, GreedyOptimizer};
use milpjoin_qopt::cost::CostModelKind;
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{Topology, WorkloadSpec};

fn workload(topo: Topology, n: usize, seed: u64) -> (Catalog, Query) {
    WorkloadSpec::new(topo, n).generate(seed)
}

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(30))
}

/// DP optimum under `model` via the trait (proven exact).
fn dp_optimum(catalog: &Catalog, query: &Query, model: CostModelKind) -> f64 {
    let out = DpOptimizer::new(model)
        .order(catalog, query, &options())
        .expect("DP solves small queries");
    assert!(out.proven_optimal);
    out.cost
}

fn check(topo: Topology, n: usize, seed: u64, precision: Precision, model: CostModelKind) {
    let (catalog, query) = workload(topo, n, seed);
    let optimal = dp_optimum(&catalog, &query, model);

    let config = EncoderConfig::default()
        .precision(precision)
        .cost_model(model);
    let milp = MilpOptimizer::new(config.clone());
    let out = milp
        .order(&catalog, &query, &options())
        .expect("MILP finds a plan");
    out.plan.validate(&query).unwrap();

    // Approximation guarantee: within the tolerance factor of optimal, with
    // a little slack for the sub-θ0 floor of the threshold window and a
    // slack floor for near-zero optima.
    let factor = precision.tolerance_factor();
    let limit = (optimal * factor * 1.5).max(optimal + 1e4);
    assert!(
        out.cost <= limit,
        "{topo:?} n={n} seed={seed} {model:?}: MILP {:.4e} vs DP {:.4e} (limit {:.4e})",
        out.cost,
        optimal,
        limit
    );

    // The hybrid must stay within the same guarantee and is additionally
    // capped by its greedy seed.
    let hybrid = HybridOptimizer::new(config.clone())
        .order(&catalog, &query, &options())
        .unwrap();
    hybrid.plan.validate(&query).unwrap();
    let greedy = GreedyOptimizer::new(model)
        .order(&catalog, &query, &options())
        .unwrap();
    assert!(
        hybrid.cost <= greedy.cost + 1e-9 && hybrid.cost <= limit,
        "{topo:?} n={n} seed={seed} {model:?}: hybrid {:.4e} vs greedy {:.4e} / limit {:.4e}",
        hybrid.cost,
        greedy.cost,
        limit
    );
}

#[test]
fn cout_small_queries_all_topologies() {
    for topo in Topology::PAPER {
        for n in [2usize, 3, 4, 5] {
            for seed in 0..3u64 {
                check(topo, n, seed, Precision::High, CostModelKind::Cout);
            }
        }
    }
}

#[test]
fn cout_medium_precision() {
    for topo in Topology::PAPER {
        check(topo, 5, 11, Precision::Medium, CostModelKind::Cout);
    }
}

#[test]
fn hash_cost_model_agreement() {
    for seed in 0..2u64 {
        check(
            Topology::Star,
            4,
            seed,
            Precision::High,
            CostModelKind::Hash,
        );
        check(
            Topology::Chain,
            4,
            seed,
            Precision::High,
            CostModelKind::Hash,
        );
    }
}

#[test]
fn sort_merge_and_bnl_models_run() {
    for model in [CostModelKind::SortMerge, CostModelKind::BlockNestedLoop] {
        check(Topology::Star, 4, 1, Precision::High, model);
    }
}

#[test]
fn six_table_star_near_optimal() {
    check(Topology::Star, 6, 5, Precision::High, CostModelKind::Cout);
}

/// A query whose tables are unknown to the catalog is an error — never a
/// panic — from every backend behind the trait.
#[test]
fn invalid_query_rejected_by_every_backend() {
    let catalog = Catalog::new(); // empty: nothing the query names exists
    let mut other = Catalog::new();
    let r = other.add_table("R", 10.0);
    let s = other.add_table("S", 20.0);
    let query = Query::new(vec![r, s]);
    let backends: Vec<Box<dyn JoinOrderer>> = vec![
        Box::new(GreedyOptimizer::default()),
        Box::new(DpOptimizer::default()),
        Box::new(MilpOptimizer::with_defaults()),
        Box::new(HybridOptimizer::with_defaults()),
    ];
    for b in &backends {
        let err = b.order(&catalog, &query, &options()).unwrap_err();
        assert!(
            matches!(err, milpjoin::OrderingError::InvalidQuery(_)),
            "{}: expected InvalidQuery, got {err:?}",
            b.name()
        );
    }
}

/// Every backend behind the same trait object produces a valid plan, and
/// their exact costs are ordered the way theory demands:
/// DP <= hybrid <= greedy.
#[test]
fn all_backends_through_one_trait() {
    let (catalog, query) = workload(Topology::Cycle, 5, 7);
    let backends: Vec<Box<dyn JoinOrderer>> = vec![
        Box::new(GreedyOptimizer::default()),
        Box::new(DpOptimizer::default()),
        Box::new(MilpOptimizer::new(
            EncoderConfig::default().precision(Precision::High),
        )),
        Box::new(HybridOptimizer::new(
            EncoderConfig::default().precision(Precision::High),
        )),
    ];
    let mut costs = std::collections::HashMap::new();
    for b in &backends {
        let out = b.order(&catalog, &query, &options()).unwrap();
        out.plan.validate(&query).unwrap();
        assert!(out.cost.is_finite() && out.cost >= 0.0);
        assert!(out.elapsed <= Duration::from_secs(31));
        costs.insert(b.name(), out.cost);
    }
    assert!(costs["dp"] <= costs["hybrid"] + 1e-9);
    assert!(costs["hybrid"] <= costs["greedy"] + 1e-9);
}
