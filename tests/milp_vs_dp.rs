//! Cross-crate integration: the MILP optimizer's plans must be within the
//! configured tolerance factor of the DP optimum (which is exact), per the
//! approximation guarantee of §4.2.

use std::time::Duration;

use milpjoin::{EncoderConfig, MilpOptimizer, OptimizeOptions, Precision};
use milpjoin_dp::{optimize as dp_optimize, DpOptions};
use milpjoin_qopt::cost::CostModelKind;
use milpjoin_workloads::{Topology, WorkloadSpec};

fn check(topo: Topology, n: usize, seed: u64, precision: Precision, model: CostModelKind) {
    let (catalog, query) = WorkloadSpec::new(topo, n).generate(seed);
    let dp = dp_optimize(
        &catalog,
        &query,
        &DpOptions { cost_model: model, ..DpOptions::default() },
    )
    .expect("DP solves small queries");

    let config = EncoderConfig::default().precision(precision).cost_model(model);
    let out = MilpOptimizer::new(config)
        .optimize(
            &catalog,
            &query,
            &OptimizeOptions::with_time_limit(Duration::from_secs(30)),
        )
        .expect("MILP finds a plan");
    out.plan.validate(&query).unwrap();

    // Approximation guarantee: within the tolerance factor of optimal, with
    // a little slack for the sub-θ0 floor of the threshold window and a
    // slack floor for near-zero optima.
    let factor = precision.tolerance_factor();
    let limit = (dp.cost * factor * 1.5).max(dp.cost + 1e4);
    assert!(
        out.true_cost <= limit,
        "{topo:?} n={n} seed={seed} {model:?}: MILP {:.4e} vs DP {:.4e} (limit {:.4e})",
        out.true_cost,
        dp.cost,
        limit
    );
}

#[test]
fn cout_small_queries_all_topologies() {
    for topo in Topology::PAPER {
        for n in [2usize, 3, 4, 5] {
            for seed in 0..3u64 {
                check(topo, n, seed, Precision::High, CostModelKind::Cout);
            }
        }
    }
}

#[test]
fn cout_medium_precision() {
    for topo in Topology::PAPER {
        check(topo, 5, 11, Precision::Medium, CostModelKind::Cout);
    }
}

#[test]
fn hash_cost_model_agreement() {
    for seed in 0..2u64 {
        check(Topology::Star, 4, seed, Precision::High, CostModelKind::Hash);
        check(Topology::Chain, 4, seed, Precision::High, CostModelKind::Hash);
    }
}

#[test]
fn sort_merge_and_bnl_models_run() {
    for model in [CostModelKind::SortMerge, CostModelKind::BlockNestedLoop] {
        check(Topology::Star, 4, 1, Precision::High, model);
    }
}

#[test]
fn six_table_star_near_optimal() {
    check(Topology::Star, 6, 5, Precision::High, CostModelKind::Cout);
}
