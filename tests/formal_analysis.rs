//! Empirical verification of the paper's Theorems 1 and 2: the MILP has
//! O(n * (n + m + l)) variables and constraints.

use milpjoin::{encode, EncoderConfig, Precision};
use milpjoin_workloads::{Topology, WorkloadSpec};

/// Returns (vars, constraints, n, m, l) for one encoded query.
fn sizes(topo: Topology, n: usize) -> (f64, f64, f64) {
    let (catalog, query) = WorkloadSpec::new(topo, n).generate(0);
    let enc = encode(
        &catalog,
        &query,
        &EncoderConfig::default().precision(Precision::Medium),
    )
    .unwrap();
    let bound = n as f64 * (n as f64 + query.num_predicates() as f64 + enc.grid.len() as f64);
    (
        enc.stats.num_vars() as f64,
        enc.stats.num_constraints() as f64,
        bound,
    )
}

#[test]
fn variables_within_linear_factor_of_bound() {
    // Theorem 1: #vars = O(n(n+m+l)). Empirically the hidden constant is
    // small; assert a generous 8.
    for topo in Topology::PAPER {
        for n in [5usize, 10, 20, 40, 60] {
            let (vars, _, bound) = sizes(topo, n);
            assert!(
                vars <= 8.0 * bound,
                "{topo:?} n={n}: {vars} vars vs bound {bound}"
            );
            assert!(
                vars >= 0.05 * bound,
                "{topo:?} n={n}: suspiciously few vars"
            );
        }
    }
}

#[test]
fn constraints_within_linear_factor_of_bound() {
    // Theorem 2: #constraints = O(n(n+m+l)).
    for topo in Topology::PAPER {
        for n in [5usize, 10, 20, 40, 60] {
            let (_, cons, bound) = sizes(topo, n);
            assert!(
                cons <= 8.0 * bound,
                "{topo:?} n={n}: {cons} constraints vs bound {bound}"
            );
        }
    }
}

#[test]
fn growth_is_quadratic_not_cubic() {
    // Doubling n with fixed l should grow sizes by ~4x (n * n term), far
    // below 8x (cubic would give that at the next doubling).
    let (v20, c20, _) = sizes(Topology::Star, 20);
    let (v40, c40, _) = sizes(Topology::Star, 40);
    let vr = v40 / v20;
    let cr = c40 / c20;
    assert!(vr > 1.8 && vr < 6.0, "variable growth ratio {vr}");
    assert!(cr > 1.8 && cr < 6.0, "constraint growth ratio {cr}");
}

#[test]
fn precision_orders_formulation_size() {
    // Higher precision => more thresholds => strictly more variables and
    // constraints (Figure 1's ordering).
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 20).generate(0);
    let mut last = (0usize, 0usize);
    for p in [Precision::Low, Precision::Medium, Precision::High] {
        let enc = encode(&catalog, &query, &EncoderConfig::default().precision(p)).unwrap();
        let cur = (enc.stats.num_vars(), enc.stats.num_constraints());
        assert!(cur > last, "{p:?}: {cur:?} not larger than {last:?}");
        last = cur;
    }
}

#[test]
fn chain_cycle_differ_by_one_predicate_family() {
    // The paper notes cycle graphs need one more predicate('s variables)
    // per intermediate result than chains.
    let (cat_chain, q_chain) = WorkloadSpec::new(Topology::Chain, 20).generate(0);
    let (cat_cycle, q_cycle) = WorkloadSpec::new(Topology::Cycle, 20).generate(0);
    let config = EncoderConfig::default().precision(Precision::Medium);
    let e_chain = encode(&cat_chain, &q_chain, &config).unwrap();
    let e_cycle = encode(&cat_cycle, &q_cycle, &config).unwrap();
    assert_eq!(q_cycle.num_predicates(), q_chain.num_predicates() + 1);
    assert!(e_cycle.stats.num_vars() > e_chain.stats.num_vars());
}
