//! Acceptance tests for the parallel session executor: with any worker
//! count, `ParallelSession::optimize_batch` must return results — plans,
//! exact costs, cost-space bounds, optimality certificates, and
//! cache-provenance flags — identical to the sequential `PlanSession` on
//! the same stream, in input order.
//!
//! The streams are mixed chain/cycle/star traffic over one shared catalog
//! (round-robin interleaved, so leaders and followers of each structure
//! spread across the batch), solved by the real hybrid backend.

use milpjoin::{EncoderConfig, HybridOptimizer, ParallelSession, PlanSession, Precision};
use milpjoin_qopt::{Catalog, OrderingOptions, Query, SessionOutcome};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;
use std::time::Duration;

fn backend() -> HybridOptimizer {
    HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low))
}

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(20))
}

/// A mixed-topology stream over one catalog: `unique` random structures
/// per topology, each `copies` times, round-robin across topologies.
fn mixed_stream(seed: u64, tables: usize, unique: usize, copies: usize) -> (Catalog, Vec<Query>) {
    let mut catalog = Catalog::new();
    let per_topology: Vec<Vec<Query>> = [Topology::Chain, Topology::Cycle, Topology::Star]
        .into_iter()
        .enumerate()
        .map(|(i, topo)| {
            WorkloadSpec::new(topo, tables).generate_stream_into(
                &mut catalog,
                seed + 1000 * i as u64,
                unique,
                copies,
            )
        })
        .collect();
    let len = per_topology.iter().map(Vec::len).max().unwrap_or(0);
    let mut queries = Vec::new();
    for i in 0..len {
        for stream in &per_topology {
            if let Some(q) = stream.get(i) {
                queries.push(q.clone());
            }
        }
    }
    (catalog, queries)
}

/// Asserts two session outcomes are result-identical (timings excluded:
/// `elapsed` and trace timestamps are wall-clock by nature).
fn assert_outcomes_identical(label: &str, seq: &SessionOutcome, par: &SessionOutcome) {
    assert_eq!(seq.outcome.plan, par.outcome.plan, "{label}: plan");
    // Bit-identical, not approximately equal: both paths must run the very
    // same solve and the very same exact re-costing.
    assert_eq!(
        seq.outcome.cost.to_bits(),
        par.outcome.cost.to_bits(),
        "{label}: cost {} vs {}",
        seq.outcome.cost,
        par.outcome.cost
    );
    assert_eq!(
        seq.outcome.objective.to_bits(),
        par.outcome.objective.to_bits(),
        "{label}: objective"
    );
    assert_eq!(
        seq.outcome.bound.map(f64::to_bits),
        par.outcome.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        seq.outcome.proven_optimal, par.outcome.proven_optimal,
        "{label}: proven_optimal"
    );
    assert_eq!(seq.cache_hit, par.cache_hit, "{label}: cache_hit");
    assert_eq!(seq.exact_hit, par.exact_hit, "{label}: exact_hit");
}

fn check_stream(catalog: &Catalog, queries: &[Query], workers_to_try: &[usize]) {
    let mut sequential =
        PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
    let expected = sequential.optimize_batch(queries);
    for &workers in workers_to_try {
        let mut parallel = ParallelSession::new(catalog.clone(), backend()).with_options(options());
        let got = parallel.optimize_batch(queries, workers);
        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
            match (e, g) {
                (Ok(e), Ok(g)) => {
                    assert_outcomes_identical(&format!("workers={workers} query={i}"), e, g);
                }
                (Err(e), Err(g)) => assert_eq!(
                    std::mem::discriminant(e),
                    std::mem::discriminant(g),
                    "workers={workers} query={i}: error kind"
                ),
                (e, g) => panic!("workers={workers} query={i}: {e:?} vs {g:?}"),
            }
        }
        let (es, ps) = (sequential.explain(), parallel.explain());
        assert_eq!(es.queries, ps.queries, "workers={workers}");
        assert_eq!(es.backend_solves, ps.backend_solves, "workers={workers}");
        assert_eq!(es.cache_hits, ps.cache_hits, "workers={workers}");
        assert_eq!(es.exact_hits, ps.exact_hits, "workers={workers}");
        assert_eq!(es.backend_errors, ps.backend_errors, "workers={workers}");
        assert_eq!(
            sequential.cache_len(),
            parallel.cache_len(),
            "workers={workers}"
        );
    }
}

/// Acceptance: a fixed mixed stream, every worker count of the issue's
/// 2–8 range.
#[test]
fn parallel_batch_is_identical_to_sequential_across_worker_counts() {
    let (catalog, queries) = mixed_stream(7, 5, 2, 3); // 18 queries, 6 structures
    check_stream(&catalog, &queries, &[2, 3, 4, 5, 6, 7, 8]);
}

/// The second batch over the same session must be all cache hits, again
/// identically to a sequential session fed the concatenated stream.
#[test]
fn repeated_batches_stay_identical() {
    let (catalog, queries) = mixed_stream(21, 4, 2, 2);
    let doubled: Vec<Query> = queries.iter().chain(queries.iter()).cloned().collect();
    let mut sequential =
        PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
    let expected = sequential.optimize_batch(&doubled);
    let mut parallel = ParallelSession::new(catalog, backend()).with_options(options());
    let first = parallel.optimize_batch(&queries, 4);
    let second = parallel.optimize_batch(&queries, 4);
    for (i, (e, g)) in expected
        .iter()
        .zip(first.iter().chain(second.iter()))
        .enumerate()
    {
        assert_outcomes_identical(
            &format!("query={i}"),
            e.as_ref().unwrap(),
            g.as_ref().unwrap(),
        );
    }
    for r in &second {
        assert!(r.as_ref().unwrap().cache_hit, "second batch must hit");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized streams (topology mix, sizes, copies, seed) and worker
    /// counts across the 2–8 range.
    #[test]
    fn random_streams_are_worker_count_invariant(
        (seed, tables, copies, workers) in (0u64..500, 3usize..=5, 1usize..=3, 2usize..=8)
    ) {
        let (catalog, queries) = mixed_stream(seed, tables, 2, copies);
        check_stream(&catalog, &queries, &[workers]);
    }
}
