//! Cost-space trace contract: MILP/hybrid trace incumbents are *exact*
//! plan costs (each MILP incumbent decoded and projected through
//! `plan_cost` at trace-point creation), the projected bound is a valid
//! cost-space lower bound, and a hybrid trace always ends describing the
//! plan that is actually returned — including after a safety-net swap.

use std::time::Duration;

use milpjoin::{
    ApproxMode, EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer, OptimizeOptions,
    OrderingOptions, Precision,
};
use milpjoin_dp::GreedyOptimizer;
use milpjoin_qopt::cost::{plan_cost, CostModelKind, CostParams};
use milpjoin_qopt::{Catalog, LeftDeepPlan, Query, TableId};
use milpjoin_workloads::{Topology, WorkloadSpec};

/// Exact C_out costs of *every* left-deep plan of `query` (n! plans; keep
/// n small).
fn all_plan_costs(catalog: &Catalog, query: &Query) -> Vec<f64> {
    fn permutations(items: &[TableId]) -> Vec<Vec<TableId>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &head) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, head);
                out.push(tail);
            }
        }
        out
    }
    permutations(&query.tables)
        .into_iter()
        .map(|order| {
            plan_cost(
                catalog,
                query,
                &LeftDeepPlan::from_order(order),
                CostModelKind::Cout,
                &CostParams::default(),
            )
            .total
        })
        .collect()
}

fn matches_some_plan(cost: f64, all: &[f64]) -> bool {
    all.iter()
        .any(|&c| (c - cost).abs() <= 1e-6 * (1.0 + c.abs()))
}

/// The satellite property: every MILP trace incumbent is `plan_cost` of a
/// decoded plan — verified against the exhaustive cost set of all plans —
/// and the projected bound never exceeds the true optimum.
#[test]
fn milp_trace_incumbents_are_exact_plan_costs() {
    for (topo, seed) in [
        (Topology::Star, 0u64),
        (Topology::Chain, 1),
        (Topology::Cycle, 2),
    ] {
        let (catalog, query) = WorkloadSpec::new(topo, 5).generate(seed);
        let all = all_plan_costs(&catalog, &query);
        let optimal = all.iter().copied().fold(f64::INFINITY, f64::min);

        let out = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Medium))
            .optimize(
                &catalog,
                &query,
                &OptimizeOptions::with_time_limit(Duration::from_secs(30)),
            )
            .unwrap();

        assert!(!out.cost_trace.is_empty(), "{topo:?}: no cost trace");
        for p in out.cost_trace.points() {
            if let Some(inc) = p.incumbent {
                assert!(
                    matches_some_plan(inc, &all),
                    "{topo:?} seed {seed}: trace incumbent {inc:.6e} is not \
                     the exact cost of any plan"
                );
            }
            if let Some(b) = p.bound {
                assert!(
                    b <= optimal * (1.0 + 1e-6) + 1e-9,
                    "{topo:?} seed {seed}: cost-space bound {b:.6e} exceeds \
                     the true optimum {optimal:.6e}"
                );
            }
        }
        // The trace tail describes the returned plan.
        let tail = out.cost_trace.points().last().unwrap();
        assert_eq!(tail.incumbent, Some(out.true_cost));
        // The outcome-level projection is at least as strong as the last
        // traced bound (the final bound may tighten at termination without
        // emitting another event).
        if let Some(tb) = tail.bound {
            let fb = out.cost_bound.expect("final bound at least the traced one");
            assert!(fb >= tb - 1e-9 * (1.0 + tb.abs()));
        }
    }
}

/// The hybrid's cost trace opens with the exact greedy seed cost, ends
/// with the exact cost of the returned plan (also when the safety-net swap
/// fired — the swap appends a final point describing the seed), and its
/// bound is valid for the returned plan even after a swap.
#[test]
fn hybrid_trace_describes_the_returned_plan() {
    for seed in 0..6u64 {
        let (catalog, query) = WorkloadSpec::new(Topology::Star, 6).generate(seed);
        let config = EncoderConfig::default().precision(Precision::Low);
        let options = OrderingOptions::with_time_limit(Duration::from_secs(30));

        let greedy = GreedyOptimizer::new(config.cost_model)
            .order(&catalog, &query, &options)
            .unwrap();
        let out = HybridOptimizer::new(config.clone())
            .order(&catalog, &query, &options)
            .unwrap();
        out.plan.validate(&query).unwrap();

        let points = out.trace.points();
        let first = points.first().expect("non-empty trace");
        assert_eq!(
            first.incumbent,
            Some(greedy.cost),
            "seed {seed}: trace must open with the exact greedy seed cost"
        );
        let tail = points.last().unwrap();
        assert_eq!(
            tail.incumbent,
            Some(out.cost),
            "seed {seed}: trace tail must describe the returned plan"
        );
        // Cost-space factor consistency: the outcome factor is cost/bound
        // with cost recomputed from scratch through the exact cost model.
        let recomputed = plan_cost(
            &catalog,
            &query,
            &out.plan,
            config.cost_model,
            &config.cost_params,
        )
        .total;
        assert!(
            (recomputed - out.cost).abs() <= 1e-9 * (1.0 + recomputed.abs()),
            "seed {seed}: outcome cost {:.6e} != plan_cost {recomputed:.6e}",
            out.cost
        );
        if let Some(b) = out.bound {
            assert!(
                b <= recomputed * (1.0 + 1e-6),
                "seed {seed}: cost-space bound {b:.6e} above the returned \
                 plan's exact cost {recomputed:.6e}"
            );
            assert_eq!(
                out.guaranteed_factor(),
                Some((recomputed / b).max(1.0)),
                "seed {seed}: guaranteed factor must be exact-cost / bound"
            );
        }
        // And the anytime accessor agrees with the tail state.
        if let Some(f) = out.trace.guaranteed_factor_at(Duration::from_secs(3600)) {
            let tail_bound = tail.bound.expect("factor requires a bound");
            assert!((f - (out.cost / tail_bound).max(1.0)).abs() <= 1e-9 * (1.0 + f));
        }
    }
}

/// Under `ApproxMode::UpperBound` the window-floor-corrected projection
/// now claims a bound: it must be `Some` for a finished solve, never
/// exceed the exhaustively-verified optimum, and trace incumbents stay
/// exact plan costs with the running-argmin monotonicity.
#[test]
fn upper_bound_projection_is_sound_against_exhaustive_optimum() {
    for (topo, seed) in [
        (Topology::Star, 3u64),
        (Topology::Chain, 4),
        (Topology::Cycle, 5),
    ] {
        let (catalog, query) = WorkloadSpec::new(topo, 5).generate(seed);
        let all = all_plan_costs(&catalog, &query);
        let optimal = all.iter().copied().fold(f64::INFINITY, f64::min);

        let config = EncoderConfig {
            approx_mode: ApproxMode::UpperBound,
            ..EncoderConfig::default().precision(Precision::Medium)
        };
        let out = MilpOptimizer::new(config)
            .optimize(
                &catalog,
                &query,
                &OptimizeOptions::with_time_limit(Duration::from_secs(30)),
            )
            .unwrap();

        assert!(
            out.cost_bound.is_some(),
            "{topo:?}: finished UpperBound solve must claim a cost-space bound"
        );
        let mut prev = f64::INFINITY;
        for p in out.cost_trace.points() {
            if let Some(inc) = p.incumbent {
                assert!(
                    matches_some_plan(inc, &all),
                    "{topo:?}: incumbent {inc:.6e} is not an exact plan cost"
                );
                assert!(inc <= prev * (1.0 + 1e-12), "{topo:?}: argmin regressed");
                prev = inc;
            }
            if let Some(b) = p.bound {
                assert!(
                    b <= optimal * (1.0 + 1e-6) + 1e-9,
                    "{topo:?}: UpperBound cost-space bound {b:.6e} exceeds \
                     the true optimum {optimal:.6e}"
                );
            }
        }
    }
}

/// Cross-backend comparability — the point of the redesign: DP's factor is
/// exactly 1, and the MILP's cost-space factor honestly reflects how far
/// its returned plan can be from the DP optimum.
#[test]
fn cost_space_factors_are_cross_backend_comparable() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 5).generate(4);
    let options = OrderingOptions::with_time_limit(Duration::from_secs(30));

    let dp = milpjoin_dp::DpOptimizer::default()
        .order(&catalog, &query, &options)
        .unwrap();
    assert_eq!(dp.guaranteed_factor(), Some(1.0));

    let milp = MilpOptimizer::new(EncoderConfig::default().precision(Precision::High))
        .order(&catalog, &query, &options)
        .unwrap();
    let factor = milp
        .guaranteed_factor()
        .expect("a finished MILP solve proves a positive cost-space bound");
    // The factor is a *valid* guarantee: exact cost within factor of the
    // exact optimum (DP's cost).
    assert!(
        milp.cost <= factor * dp.cost * (1.0 + 1e-6),
        "cost {:.4e} not within {factor:.3}x of optimum {:.4e}",
        milp.cost,
        dp.cost
    );
}
