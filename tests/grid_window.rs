//! Regression coverage for the per-cost-model threshold-window width
//! (`thresholds::max_grid_decades`).
//!
//! The widening is only useful if the solver stays numerically sound on
//! the wide windows it enables: the block-nested-loop conversion factor
//! (~3.9 decades at default parameters) pushes the BNL grid to ~9.5
//! decades of cardinality span, where the `co = Σ δ_r·cto_r` row mixes
//! its extreme coefficients at a ratio beyond the 6-decade cost-space
//! conditioning baseline. These tests pin the empirical behavior the
//! widening was validated against: wide-cardinality BNL queries must
//! solve without phantom infeasibility and land on (or within the
//! documented tolerance of) the DP optimum.

use milpjoin::{EncoderConfig, MilpOptimizer, OptimizeOptions, Precision};
use milpjoin_dp::DpOptimizer;
use milpjoin_qopt::cost::CostModelKind;
use milpjoin_qopt::orderer::{JoinOrderer, OrderingOptions};
use milpjoin_qopt::{Catalog, Predicate, Query};
use std::time::Duration;

fn chain(cards: &[f64], sels: &[f64]) -> (Catalog, Query) {
    let mut c = Catalog::new();
    let ids: Vec<_> = cards
        .iter()
        .enumerate()
        .map(|(i, &x)| c.add_table(format!("t{i}"), x))
        .collect();
    let mut q = Query::new(ids.clone());
    for (i, &s) in sels.iter().enumerate() {
        q.add_predicate(Predicate::binary(ids[i], ids[i + 1], s));
    }
    (c, q)
}

#[test]
fn wide_cardinality_bnl_solves_to_the_dp_optimum() {
    // Cardinalities spanning 7 decades: the BNL window is anchored ~3.9
    // decades above the greedy cost scale and extends ~9.5 decades down —
    // the exact configuration the widened per-model width enables.
    for (cards, sels) in [
        (vec![10.0, 1e3, 1e5, 1e7, 1e8], vec![1e-4, 1e-3, 1e-4, 1e-2]),
        (
            vec![2.0, 1e2, 1e4, 1e6, 1e8, 5e8],
            vec![0.5, 1e-2, 1e-4, 1e-3, 1e-4],
        ),
    ] {
        let (c, q) = chain(&cards, &sels);
        for prec in [Precision::High, Precision::Medium] {
            let cfg = EncoderConfig::new(prec, CostModelKind::BlockNestedLoop);
            let milp = MilpOptimizer::new(cfg);
            let grid = &milp.encode_only(&c, &q).unwrap().grid;
            let span = grid.top_value().log10() - grid.floor_value().log10();
            assert!(
                span > 6.5,
                "{prec:?}: expected a widened window, got {span:.2} decades"
            );
            // Phantom infeasibility / detached-variable failures would
            // surface as Infeasible or NoPlanFound here.
            let out = milp
                .optimize(
                    &c,
                    &q,
                    &OptimizeOptions::with_time_limit(Duration::from_secs(30)),
                )
                .unwrap();
            let dp = DpOptimizer::new(CostModelKind::BlockNestedLoop)
                .order(&c, &q, &OrderingOptions::default())
                .unwrap();
            assert!(out.true_cost.is_finite());
            // Within the grid's own approximation tolerance of the true
            // optimum (observed: within 1.5% even when the time budget
            // stops the gap proof early).
            let f = prec.tolerance_factor();
            assert!(
                out.true_cost <= dp.cost * f * (1.0 + 1e-9),
                "{prec:?}: milp {:.4e} vs dp {:.4e} (allowed factor {f})",
                out.true_cost,
                dp.cost
            );
            assert!(out.status.has_solution(), "{prec:?}: {:?}", out.status);
        }
    }
}
