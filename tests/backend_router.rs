//! Acceptance tests for the adaptive backend router and its DPconv arm:
//! a routed outcome is bit-identical to running the reported arm directly
//! (fixed cases plus randomized mixed streams), the DPconv arm agrees with
//! the classical subset DP on the C_out optimum across all paper
//! topologies, every arm's error/limit classification passes through the
//! router unchanged, a duplicate-heavy small-query stream through
//! `QueryService` resolves without ever reaching branch-and-bound —
//! verified from `SessionStats` arm counts alone — and traffic at or past
//! the decompose threshold always lands on the decompose arm, so a very
//! large query never runs a bare whole-query root LP.

use std::time::Duration;

use milpjoin::{
    standard_router, BackendArm, EncoderConfig, JoinOrderer, MilpOptimizer, OrderingError,
    OrderingOptions, OrderingOutcome, ParallelSession, PlanSession, Precision, QueryService,
    RouterOptimizer, RouterOptions,
};
use milpjoin_dp::{DpConvOptimizer, DpOptimizer};
use milpjoin_qopt::cost::{CostModelKind, CostParams};
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{large_query_stream, size_swept_stream, Topology, WorkloadSpec};
use proptest::prelude::*;

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(30))
}

fn router(model: CostModelKind) -> RouterOptimizer {
    let config = EncoderConfig::default()
        .precision(Precision::Low)
        .cost_model(model);
    standard_router(config, RouterOptions::default())
}

/// A mixed-topology stream over one catalog: `unique` random structures
/// per topology, each `copies` times, round-robin across topologies.
fn mixed_stream(seed: u64, tables: usize, unique: usize, copies: usize) -> (Catalog, Vec<Query>) {
    let mut catalog = Catalog::new();
    let per_topology: Vec<Vec<Query>> = Topology::PAPER
        .into_iter()
        .enumerate()
        .map(|(i, topo)| {
            WorkloadSpec::new(topo, tables).generate_stream_into(
                &mut catalog,
                seed + 1000 * i as u64,
                unique,
                copies,
            )
        })
        .collect();
    let len = per_topology.iter().map(Vec::len).max().unwrap_or(0);
    let mut queries = Vec::new();
    for i in 0..len {
        for stream in &per_topology {
            if let Some(q) = stream.get(i) {
                queries.push(q.clone());
            }
        }
    }
    (catalog, queries)
}

/// The router's core contract: dispatch, never post-process. Timings
/// (`elapsed`, trace timestamps) are wall-clock by nature and excluded.
fn assert_bit_identical(label: &str, routed: &OrderingOutcome, direct: &OrderingOutcome) {
    assert_eq!(routed.plan, direct.plan, "{label}: plan");
    assert_eq!(
        routed.cost.to_bits(),
        direct.cost.to_bits(),
        "{label}: cost {} vs {}",
        routed.cost,
        direct.cost
    );
    assert_eq!(
        routed.objective.to_bits(),
        direct.objective.to_bits(),
        "{label}: objective"
    );
    assert_eq!(
        routed.bound.map(f64::to_bits),
        direct.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        routed.proven_optimal, direct.proven_optimal,
        "{label}: proven_optimal"
    );
    assert!(direct.route.is_none(), "{label}: direct solves never route");
}

/// Routes one query, re-runs the reported arm directly, and demands
/// bit-identity. Returns the arm that served it.
fn check_routed_identity(
    router: &RouterOptimizer,
    catalog: &Catalog,
    query: &Query,
    opts: &OrderingOptions,
    label: &str,
) -> BackendArm {
    let routed = router
        .order(catalog, query, opts)
        .unwrap_or_else(|e| panic!("{label}: routed solve failed: {e:?}"));
    let decision = routed.route.expect("routed solve records its decision");
    let direct = router
        .arm(decision.arm)
        .expect("route() only returns installed arms")
        .order(catalog, query, opts)
        .unwrap_or_else(|e| panic!("{label}: direct {} failed: {e:?}", decision.arm));
    assert_bit_identical(&format!("{label} via {}", decision.arm), &routed, &direct);
    decision.arm
}

/// Fixed cases covering every default-policy rule that can fire under
/// C_out: the exact fast path at 3/6/10 tables, the search tail above the
/// exact window, and the very-large decompose rule (which outranks the
/// star fastpath on a full router, and whose orchestration is
/// deterministic — so routed-vs-direct bit-identity holds through it too).
#[test]
fn routed_outcome_bit_identical_fixed_cases() {
    let router = router(CostModelKind::Cout);
    for (topo, n, expect) in [
        (Topology::Chain, 3, BackendArm::DpConv),
        (Topology::Cycle, 6, BackendArm::DpConv),
        (Topology::Star, 10, BackendArm::DpConv),
        (Topology::Chain, 13, BackendArm::Hybrid),
        (Topology::Star, 20, BackendArm::Decompose),
    ] {
        let (catalog, query) = WorkloadSpec::new(topo, n).generate(5);
        // The decompose case runs under a deterministic node budget: a
        // wall-clock limit that binds mid-fragment-solve would make the
        // routed and direct runs legitimately diverge (and burn the full
        // limit); a node budget keeps them cheap and bit-reproducible.
        let opts = if expect == BackendArm::Decompose {
            OrderingOptions::default().deterministic_budget(60)
        } else {
            options()
        };
        let label = format!("{topo:?} n={n}");
        let arm = check_routed_identity(&router, &catalog, &query, &opts, &label);
        assert_eq!(arm, expect, "{label}: unexpected arm");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized mixed streams under both a subset-decomposable and a
    /// split-dependent cost model: whichever arm the policy reports, its
    /// direct output matches the routed output bit for bit.
    #[test]
    fn routed_streams_bit_identical_to_reported_arm(
        (seed, tables, hash_model) in (0u64..500, 3usize..=6, any::<bool>())
    ) {
        let model = if hash_model { CostModelKind::Hash } else { CostModelKind::Cout };
        let router = router(model);
        let (catalog, queries) = mixed_stream(seed, tables, 2, 1);
        for (i, q) in queries.iter().enumerate() {
            let arm = check_routed_identity(&router, &catalog, q, &options(), &format!("seed={seed} query={i}"));
            // The small-query policy never spends branch-and-bound here.
            assert!(
                matches!(arm, BackendArm::DpConv | BackendArm::Dp),
                "small query routed to {arm}"
            );
        }
    }
}

/// The DPconv arm is exact where it claims to apply: its C_out optimum
/// matches the classical Selinger DP across every paper topology, plans
/// validate, and both arms certify optimality.
#[test]
fn dpconv_agrees_with_dp_on_cout_optimum() {
    let conv = DpConvOptimizer::default();
    let dp = DpOptimizer::default();
    for topo in Topology::PAPER {
        for n in [2usize, 3, 5, 8] {
            for seed in 0..3u64 {
                let (catalog, query) = WorkloadSpec::new(topo, n).generate(seed);
                let c = conv.order(&catalog, &query, &options()).unwrap();
                let d = dp.order(&catalog, &query, &options()).unwrap();
                c.plan.validate(&query).unwrap();
                assert!(c.proven_optimal && d.proven_optimal);
                let rel = 1e-9 * (1.0 + d.cost.abs());
                assert!(
                    (c.cost - d.cost).abs() <= rel,
                    "{topo:?} n={n} seed={seed}: dpconv {:.6e} vs dp {:.6e}",
                    c.cost,
                    d.cost
                );
            }
        }
    }
}

/// An arm that fails with a chosen classification, for exercising the
/// pass-through contract on every error variant.
#[derive(Clone)]
struct FailingArm {
    err: fn() -> OrderingError,
}

impl JoinOrderer for FailingArm {
    fn name(&self) -> &'static str {
        "failing"
    }

    fn cost_model(&self) -> (CostModelKind, CostParams) {
        (CostModelKind::Cout, CostParams::default())
    }

    fn order(
        &self,
        _catalog: &Catalog,
        _query: &Query,
        _options: &OrderingOptions,
    ) -> Result<OrderingOutcome, OrderingError> {
        Err((self.err)())
    }
}

/// Every error classification an arm can produce survives the router
/// verbatim — no retry, no reclassification, no fallback to another arm.
#[test]
fn every_error_classification_passes_through_unchanged() {
    let variants: [fn() -> OrderingError; 4] = [
        || OrderingError::Timeout,
        || OrderingError::ResourceLimit("node budget exhausted".into()),
        || OrderingError::InvalidConfig("arm misconfigured".into()),
        || OrderingError::Backend("solver refused".into()),
    ];
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 4).generate(1);
    for make in variants {
        let router = RouterOptimizer::new(RouterOptions::default())
            .with_arm(BackendArm::Dp, FailingArm { err: make });
        let got = router.order(&catalog, &query, &options()).unwrap_err();
        assert_eq!(
            format!("{got:?}"),
            format!("{:?}", make()),
            "router altered the arm's error"
        );
    }
}

/// The same contract on real arms: a DPconv memory blow-up stays a
/// `ResourceLimit`, and a MILP deterministic-budget exhaustion stays a
/// `ResourceLimit` — with messages identical to the direct run.
#[test]
fn real_limit_classifications_pass_through() {
    // DPconv at 12 tables against a budget far below the 4096-subset
    // table: the arm refuses before allocating, and so does the router.
    let tiny = DpConvOptimizer {
        memory_budget_bytes: 1024,
        ..Default::default()
    };
    let router = RouterOptimizer::new(RouterOptions::default()).with_arm(BackendArm::DpConv, tiny);
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 12).generate(3);
    let direct = router
        .arm(BackendArm::DpConv)
        .unwrap()
        .order(&catalog, &query, &options())
        .unwrap_err();
    let routed = router.order(&catalog, &query, &options()).unwrap_err();
    assert!(
        matches!(&routed, OrderingError::ResourceLimit(_)),
        "expected ResourceLimit, got {routed:?}"
    );
    assert_eq!(format!("{routed:?}"), format!("{direct:?}"));

    // A cold MILP with a zero node budget can have no incumbent. With only
    // the MILP arm installed, the small-query rules cannot fire and the
    // search rule routes to it.
    let milp = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low));
    let router = RouterOptimizer::new(RouterOptions::default()).with_arm(BackendArm::Milp, milp);
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 4).generate(1);
    let zero_budget = OrderingOptions {
        time_limit: Some(Duration::from_secs(600)),
        deterministic_budget: Some(0),
        ..Default::default()
    };
    let routed = router.order(&catalog, &query, &zero_budget).unwrap_err();
    assert!(
        matches!(&routed, OrderingError::ResourceLimit(_)),
        "expected ResourceLimit, got {routed:?}"
    );
}

/// The acceptance criterion of the router subsystem: `RouterOptimizer`
/// drops into `QueryService` unchanged — submit/ticket semantics and
/// cross-batch dedup hold — and a duplicate-heavy mixed-size stream of
/// small queries resolves without ever invoking branch-and-bound, read off
/// the `SessionStats` arm counts alone.
#[test]
fn service_router_small_traffic_never_reaches_branch_and_bound() {
    const SMALL_SIZES: [usize; 3] = [3, 6, 10];
    let (catalog, queries) = size_swept_stream(&Topology::PAPER, &SMALL_SIZES, 11, 3);
    let unique = (Topology::PAPER.len() * SMALL_SIZES.len()) as u64;

    let service = QueryService::new(catalog.clone(), router(CostModelKind::Cout))
        .with_workers(3)
        .with_options(options());
    let tickets = service.submit_many(queries.iter().cloned());
    let outcomes: Vec<_> = tickets
        .iter()
        .map(|t| t.wait().expect("every small query solves"))
        .collect();
    let stats = service.shutdown();

    assert_eq!(stats.queries, queries.len() as u64);
    assert_eq!(stats.backend_solves, unique, "one solve per structure");
    assert_eq!(stats.cache_hits, queries.len() as u64 - unique);
    assert_eq!(stats.routes.total(), unique, "every routed solve counted");
    assert_eq!(
        stats.routes.search_solves(),
        0,
        "small traffic reached branch-and-bound: {}",
        stats.routes
    );
    assert_eq!(stats.nodes_expanded, 0, "no search nodes anywhere");

    // Zero-API-change drop-in across the other service layers: the
    // sequential session and the parallel executor produce value-identical
    // results and the same arm counts.
    let mut session = PlanSession::new(catalog.clone(), Box::new(router(CostModelKind::Cout)))
        .with_options(options());
    let expected = session.optimize_batch(&queries);
    for (i, (e, got)) in expected.iter().zip(&outcomes).enumerate() {
        let e = e.as_ref().unwrap();
        assert_eq!(e.outcome.plan, got.outcome.plan, "query {i}: plan");
        assert_eq!(
            e.outcome.cost.to_bits(),
            got.outcome.cost.to_bits(),
            "query {i}: cost"
        );
    }
    let seq_stats = session.explain();
    assert_eq!(seq_stats.routes, stats.routes);

    let mut parallel =
        ParallelSession::new(catalog, router(CostModelKind::Cout)).with_options(options());
    let par_results = parallel.optimize_batch(&queries, 4);
    for (i, (e, got)) in expected.iter().zip(&par_results).enumerate() {
        let e = e.as_ref().unwrap();
        let got = got.as_ref().unwrap();
        assert_eq!(e.outcome.plan, got.outcome.plan, "parallel query {i}: plan");
        assert_eq!(
            e.outcome.cost.to_bits(),
            got.outcome.cost.to_bits(),
            "parallel query {i}: cost"
        );
    }
    assert_eq!(parallel.explain().routes, stats.routes);
}

/// The acceptance criterion of the decompose arm's router wiring: traffic
/// at or past `decompose_min_tables` tables never reaches a bare
/// whole-query root LP. Checked two ways — the pure policy routes every
/// query of the large-query stream (all paper topologies at 20/30/60
/// tables) to the decompose arm under the `very-large-decompose` rule,
/// and an end-to-end session over the 20-table slice shows all solves on
/// the decompose arm with zero `search_solves` (the counter that polices
/// bare MILP/hybrid root solves) in the aggregated arm counts.
#[test]
fn large_traffic_never_reaches_a_bare_root_lp() {
    let r = router(CostModelKind::Cout);
    let threshold = r.options().decompose_min_tables;
    let (catalog, queries) = large_query_stream(13, 1);
    assert!(!queries.is_empty());
    for q in &queries {
        assert!(q.num_tables() >= threshold, "stream below the threshold");
        let decision = r
            .route_query(q, &options())
            .expect("full router always routes");
        assert_eq!(
            decision.arm,
            BackendArm::Decompose,
            "{} tables routed to {}",
            q.num_tables(),
            decision.arm
        );
        assert_eq!(decision.rule, "very-large-decompose");
    }

    // End-to-end on the threshold-sized slice (a small deterministic node
    // budget keeps the fragment solves cheap; with no time limit set the
    // tight-budget rule cannot preempt the decompose rule).
    let at_threshold: Vec<Query> = queries
        .iter()
        .filter(|q| q.num_tables() == threshold)
        .cloned()
        .collect();
    assert!(!at_threshold.is_empty());
    let mut session = PlanSession::new(catalog, Box::new(r))
        .with_options(OrderingOptions::default().deterministic_budget(60));
    let results = session.optimize_batch(&at_threshold);
    for (q, r) in at_threshold.iter().zip(&results) {
        let outcome = &r.as_ref().expect("decompose solves the stream").outcome;
        outcome.plan.validate(q).expect("stitched plan is valid");
        let decision = outcome.route.expect("routed solve records its decision");
        assert_eq!(decision.rule, "very-large-decompose");
        assert!(!outcome.proven_optimal && outcome.bound.is_none());
    }
    let stats = session.explain();
    assert_eq!(stats.routes.decompose, at_threshold.len() as u64);
    assert_eq!(
        stats.routes.search_solves(),
        0,
        "a very large query ran a bare root LP: {}",
        stats.routes
    );
}
