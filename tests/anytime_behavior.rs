//! Anytime-contract tests: incumbents only improve, bounds only rise, time
//! limits are respected, and the guaranteed factor is monotone.

use std::time::{Duration, Instant};

use milpjoin::{EncoderConfig, MilpOptimizer, OptimizeOptions, Precision};
use milpjoin_workloads::{Topology, WorkloadSpec};

#[test]
fn trace_monotonicity() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 6).generate(2);
    let out = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low))
        .optimize(
            &catalog,
            &query,
            &OptimizeOptions::with_time_limit(Duration::from_secs(20)),
        )
        .unwrap();
    let mut last_inc = f64::INFINITY;
    let mut last_bound = f64::NEG_INFINITY;
    let mut last_t = Duration::ZERO;
    for p in out.trace.points() {
        assert!(p.elapsed >= last_t, "time went backwards");
        last_t = p.elapsed;
        if let Some(inc) = p.incumbent {
            assert!(inc <= last_inc * (1.0 + 1e-9), "incumbent worsened");
            last_inc = inc;
        }
        assert!(
            p.bound >= last_bound - 1e-9 * (1.0 + last_bound.abs()),
            "bound dropped"
        );
        last_bound = p.bound;
    }
}

#[test]
fn guaranteed_factor_is_nonincreasing_over_time() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 6).generate(4);
    let out = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low))
        .optimize(
            &catalog,
            &query,
            &OptimizeOptions::with_time_limit(Duration::from_secs(20)),
        )
        .unwrap();
    let mut last = f64::INFINITY;
    for ms in [50u64, 200, 1000, 5000, 20000] {
        if let Some(f) = out.trace.guaranteed_factor_at(Duration::from_millis(ms)) {
            assert!(
                f <= last * (1.0 + 1e-9),
                "factor rose from {last} to {f} at {ms}ms"
            );
            last = f;
        }
    }
}

#[test]
fn time_limit_respected() {
    let (catalog, query) = WorkloadSpec::new(Topology::Chain, 12).generate(1);
    let limit = Duration::from_millis(800);
    let start = Instant::now();
    let _ = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Low)).optimize(
        &catalog,
        &query,
        &OptimizeOptions::with_time_limit(limit),
    );
    // Generous slack: one node LP may overshoot slightly.
    assert!(start.elapsed() < limit + Duration::from_secs(10));
}

#[test]
fn final_factor_matches_trace_tail() {
    let (catalog, query) = WorkloadSpec::new(Topology::Star, 4).generate(3);
    let out = MilpOptimizer::new(EncoderConfig::default().precision(Precision::Medium))
        .optimize(
            &catalog,
            &query,
            &OptimizeOptions::with_time_limit(Duration::from_secs(20)),
        )
        .unwrap();
    if let (Some(final_factor), Some(tail)) = (
        out.optimality_factor(),
        out.trace.guaranteed_factor_at(Duration::from_secs(3600)),
    ) {
        assert!((final_factor - tail).abs() <= 0.5 + 0.1 * final_factor.abs());
    }
}
