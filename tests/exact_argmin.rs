//! The exact-cost argmin contract and the UpperBound bound projection,
//! across the backend/config matrix.
//!
//! Two invariants from the incumbent-pipeline redesign:
//!
//! 1. **Argmin**: the returned plan's exact cost equals the minimum exact
//!    cost over every trace incumbent — the backend returns the best plan
//!    it ever decoded, and the cost-space trace is monotone non-increasing.
//! 2. **Sound UpperBound bound**: under `ApproxMode::UpperBound` the
//!    projected cost-space bound is `Some` for a finished solve and never
//!    exceeds the DP-verified optimum (the window-floor accounting keeps
//!    the projection a true lower bound).

use std::time::Duration;

use milpjoin::{
    ApproxMode, EncoderConfig, HybridOptimizer, JoinOrderer, MilpOptimizer, OrderingOptions,
    OrderingOutcome, Precision,
};
use milpjoin_dp::DpOptimizer;
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(30))
}

/// Invariant 1 for one outcome: cost == min over trace incumbents, trace
/// monotone, tail describes the returned plan.
fn assert_argmin(label: &str, out: &OrderingOutcome) {
    let incumbents: Vec<f64> = out
        .trace
        .points()
        .iter()
        .filter_map(|p| p.incumbent)
        .collect();
    assert!(!incumbents.is_empty(), "{label}: no trace incumbents");
    let min = incumbents.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        (out.cost - min).abs() <= 1e-9 * (1.0 + min.abs()),
        "{label}: returned cost {:.6e} != min trace incumbent {min:.6e}",
        out.cost
    );
    for w in incumbents.windows(2) {
        assert!(
            w[1] <= w[0] * (1.0 + 1e-12) + 1e-12,
            "{label}: trace incumbents regressed ({:.6e} -> {:.6e})",
            w[0],
            w[1]
        );
    }
    let tail = out.trace.points().last().unwrap();
    assert_eq!(
        tail.incumbent,
        Some(out.cost),
        "{label}: trace tail must describe the returned plan"
    );
}

/// Invariant 2 for one outcome: any claimed cost-space bound is a true
/// lower bound on the DP-verified optimum.
fn assert_bound_sound(label: &str, out: &OrderingOutcome, dp_optimum: f64) {
    if let Some(b) = out.bound {
        assert!(
            b <= dp_optimum * (1.0 + 1e-6) + 1e-9,
            "{label}: cost-space bound {b:.6e} exceeds the DP optimum {dp_optimum:.6e}"
        );
    }
    for p in out.trace.points() {
        if let Some(b) = p.bound {
            assert!(
                b <= dp_optimum * (1.0 + 1e-6) + 1e-9,
                "{label}: traced bound {b:.6e} exceeds the DP optimum {dp_optimum:.6e}"
            );
        }
    }
}

/// The backend/config matrix of the acceptance criteria: MILP and hybrid
/// under both approximation modes and two precisions.
fn matrix() -> Vec<(String, Box<dyn JoinOrderer>)> {
    let mut backends: Vec<(String, Box<dyn JoinOrderer>)> = Vec::new();
    for mode in [ApproxMode::LowerBound, ApproxMode::UpperBound] {
        for precision in [Precision::Low, Precision::Medium] {
            let config = EncoderConfig {
                approx_mode: mode,
                ..EncoderConfig::default().precision(precision)
            };
            backends.push((
                format!("milp/{mode:?}/{}", precision.name()),
                Box::new(MilpOptimizer::new(config.clone())),
            ));
            backends.push((
                format!("hybrid/{mode:?}/{}", precision.name()),
                Box::new(HybridOptimizer::new(config)),
            ));
        }
    }
    backends
}

fn check_query(label_prefix: &str, catalog: &Catalog, query: &Query) {
    let dp = DpOptimizer::default()
        .order(catalog, query, &options())
        .expect("DP solves tier-1 sizes");
    for (name, backend) in matrix() {
        let label = format!("{label_prefix}/{name}");
        let out = backend
            .order(catalog, query, &options())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        out.plan.validate(query).unwrap();
        assert_argmin(&label, &out);
        assert_bound_sound(&label, &out, dp.cost);
        // The returned plan can never be worse than what any backend
        // proves: its cost is at least the DP optimum.
        assert!(
            out.cost >= dp.cost * (1.0 - 1e-6) - 1e-9,
            "{label}: cost {:.6e} below the DP optimum {:.6e}?!",
            out.cost,
            dp.cost
        );
    }
}

/// Deterministic matrix sweep on one workload per topology (the acceptance
/// criterion's tier-1 shapes), including the UpperBound `Some`-bound check
/// for finished solves.
#[test]
fn matrix_argmin_and_upper_bound_soundness() {
    for (topo, seed) in [
        (Topology::Chain, 11u64),
        (Topology::Star, 12),
        (Topology::Cycle, 13),
    ] {
        let (catalog, query) = WorkloadSpec::new(topo, 5).generate(seed);
        check_query(topo.name(), &catalog, &query);

        // A finished UpperBound solve must now claim a bound (the previous
        // behavior was an unconditional None).
        let out = MilpOptimizer::new(EncoderConfig {
            approx_mode: ApproxMode::UpperBound,
            ..EncoderConfig::default().precision(Precision::Medium)
        })
        .order(&catalog, &query, &options())
        .unwrap();
        assert!(
            out.bound.is_some(),
            "{topo:?}: UpperBound solve claimed no cost-space bound"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized version over chain/star/cycle shapes and sizes.
    #[test]
    fn random_queries_satisfy_argmin_and_bounds(
        (topo_ix, tables, seed) in (0usize..3, 3usize..=5, 0u64..1000)
    ) {
        let topo = [Topology::Chain, Topology::Star, Topology::Cycle][topo_ix];
        let (catalog, query) = WorkloadSpec::new(topo, tables).generate(seed);
        check_query(&format!("{}/{tables}t/{seed}", topo.name()), &catalog, &query);
    }
}
