//! Acceptance tests for persistent plan-cache snapshots: a snapshot-booted
//! session or service serves a previously-seen stream with **zero** backend
//! solves and bit-identical plans/costs/certificates; corrupted or
//! config-mismatched snapshots degrade to a clean cold boot (rejection
//! counters set, nothing served stale, never a panic).

use std::path::PathBuf;
use std::time::Duration;

use milpjoin::{
    EncoderConfig, FingerprintOptions, HybridOptimizer, OrderingOptions, PlanSession, Precision,
    QueryService, SessionOutcome,
};
use milpjoin_qopt::persist::fnv1a64;
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{Topology, WorkloadSpec};
use proptest::prelude::*;

fn backend() -> HybridOptimizer {
    HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low))
}

fn options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(20))
}

/// Per-process-unique scratch path so concurrent test binaries never race
/// on one file; callers remove it at the end of the happy path (leftover
/// files from a panicking run are overwritten atomically next time).
fn tmp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "milpjoin-plan-persist-{}-{name}.snap",
        std::process::id()
    ))
}

/// A mixed-topology duplicate-heavy stream over one catalog.
fn mixed_stream(seed: u64, tables: usize, unique: usize, copies: usize) -> (Catalog, Vec<Query>) {
    let mut catalog = Catalog::new();
    let mut queries = Vec::new();
    for (i, topo) in [Topology::Chain, Topology::Cycle, Topology::Star]
        .into_iter()
        .enumerate()
    {
        queries.extend(WorkloadSpec::new(topo, tables).generate_stream_into(
            &mut catalog,
            seed + 1000 * i as u64,
            unique,
            copies,
        ));
    }
    (catalog, queries)
}

/// Value identity: plan, exact cost, bound, certificate. `cache_hit` is
/// deliberately excluded — on a warm boot *every* query is a hit, while
/// the recording run solved each structure once.
fn assert_values_identical(label: &str, recorded: &SessionOutcome, warm: &SessionOutcome) {
    assert_eq!(recorded.outcome.plan, warm.outcome.plan, "{label}: plan");
    assert_eq!(
        recorded.outcome.cost.to_bits(),
        warm.outcome.cost.to_bits(),
        "{label}: cost {} vs {}",
        recorded.outcome.cost,
        warm.outcome.cost
    );
    assert_eq!(
        recorded.outcome.bound.map(f64::to_bits),
        warm.outcome.bound.map(f64::to_bits),
        "{label}: bound"
    );
    assert_eq!(
        recorded.outcome.proven_optimal, warm.outcome.proven_optimal,
        "{label}: proven_optimal"
    );
    assert!(warm.cache_hit, "{label}: warm boot must serve from cache");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Round trip: record a stream, snapshot, boot a fresh session from
    /// the snapshot. The warm session re-serves the whole stream with
    /// zero backend solves and value-identical outcomes, and re-exporting
    /// the untouched warm cache reproduces the snapshot byte for byte.
    #[test]
    fn snapshot_round_trip_serves_with_zero_solves(
        (seed, tables, copies) in (0u64..500, 3usize..=5, 1usize..=3)
    ) {
        let (catalog, queries) = mixed_stream(seed, tables, 2, copies);
        let path = tmp_snapshot(&format!("roundtrip-{seed}-{tables}-{copies}"));
        let reexport = tmp_snapshot(&format!("reexport-{seed}-{tables}-{copies}"));

        let mut recorder =
            PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
        let expected = recorder.optimize_batch(&queries);
        let written = recorder.snapshot_to(&path).unwrap();
        prop_assert_eq!(written.entries, recorder.cache_len() as u64);
        prop_assert_eq!(recorder.explain().snapshot_entries_written, written.entries);

        let mut warm = PlanSession::new(catalog, Box::new(backend()))
            .with_options(options())
            .with_snapshot(&path);
        let boot = warm.explain();
        prop_assert_eq!(boot.snapshot_entries_loaded, written.entries);
        prop_assert_eq!(boot.snapshot_entries_rejected, 0);

        // Re-exporting the freshly booted cache is deterministic down to
        // the byte: recency ranks, entry order, and hashes all survive.
        warm.snapshot_to(&reexport).unwrap();
        prop_assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&reexport).unwrap());

        let served = warm.optimize_batch(&queries);
        for (i, (e, w)) in expected.iter().zip(&served).enumerate() {
            assert_values_identical(
                &format!("seed={seed} query={i}"),
                e.as_ref().unwrap(),
                w.as_ref().unwrap(),
            );
        }
        let stats = warm.explain();
        prop_assert_eq!(stats.backend_solves, 0);
        prop_assert_eq!(stats.warm_hits, queries.len() as u64);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&reexport).ok();
    }
}

/// Shared fixture for the corruption tests: one recorded snapshot plus the
/// stream that produced it.
fn recorded_snapshot(name: &str) -> (PathBuf, Catalog, Vec<Query>, u64) {
    let (catalog, queries) = mixed_stream(42, 4, 2, 2);
    let path = tmp_snapshot(name);
    let mut recorder =
        PlanSession::new(catalog.clone(), Box::new(backend())).with_options(options());
    recorder.optimize_batch(&queries);
    let written = recorder.snapshot_to(&path).unwrap();
    (path, catalog, queries, written.entries)
}

/// Boots a session from `path` and asserts a clean cold boot: nothing
/// loaded, at least one rejection counted, and the full stream still
/// solves correctly from scratch.
fn assert_cold_boot(label: &str, path: &PathBuf, catalog: Catalog, queries: &[Query]) {
    let mut session = PlanSession::new(catalog, Box::new(backend()))
        .with_options(options())
        .with_snapshot(path);
    let boot = session.explain();
    assert_eq!(boot.snapshot_entries_loaded, 0, "{label}: nothing loads");
    assert!(
        boot.snapshot_entries_rejected >= 1,
        "{label}: rejections counted"
    );
    for result in session.optimize_batch(queries) {
        result.unwrap();
    }
    let stats = session.explain();
    assert!(stats.backend_solves > 0, "{label}: cold boot re-solves");
    assert_eq!(stats.warm_hits, 0, "{label}: no stale warm entries");
}

#[test]
fn truncated_snapshot_degrades_to_a_clean_cold_boot() {
    let (path, catalog, queries, _) = recorded_snapshot("truncated");
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 7, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert_cold_boot(&format!("cut={cut}"), &path, catalog.clone(), &queries);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn flipped_byte_degrades_to_a_clean_cold_boot() {
    let (path, catalog, queries, _) = recorded_snapshot("flipped");
    let bytes = std::fs::read(&path).unwrap();
    // A handful of positions spread across header, body, and checksum;
    // the persist unit tests flip every byte exhaustively on small caches.
    for pos in [0, 9, 20, bytes.len() / 2, bytes.len() - 3] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        std::fs::write(&path, &corrupt).unwrap();
        assert_cold_boot(&format!("pos={pos}"), &path, catalog.clone(), &queries);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn future_version_rejects_even_with_a_valid_checksum() {
    let (path, catalog, queries, _) = recorded_snapshot("version");
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8] = bytes[8].wrapping_add(1); // format version lives after the magic
    let body_len = bytes.len() - 8;
    let reseal = fnv1a64(&bytes[..body_len]).to_le_bytes();
    bytes[body_len..].copy_from_slice(&reseal);
    std::fs::write(&path, &bytes).unwrap();
    assert_cold_boot("version-bump", &path, catalog, &queries);
    std::fs::remove_file(&path).ok();
}

#[test]
fn fingerprint_option_mismatch_rejects_every_entry() {
    let (path, catalog, queries, entries) = recorded_snapshot("fp-mismatch");
    let coarser = FingerprintOptions {
        log10_step: 0.5,
        ..FingerprintOptions::default()
    };
    let mut session = PlanSession::new(catalog, Box::new(backend()))
        .with_options(options())
        .with_fingerprint_options(coarser)
        .with_snapshot(&path);
    let boot = session.explain();
    assert_eq!(boot.snapshot_entries_loaded, 0);
    assert_eq!(
        boot.snapshot_entries_rejected, entries,
        "a quantization-config mismatch must reject the whole snapshot"
    );
    // Still a working cold session under the new quantization.
    for result in session.optimize_batch(&queries) {
        result.unwrap();
    }
    assert_eq!(session.explain().warm_hits, 0);
    std::fs::remove_file(&path).ok();
}

/// The service-tier loop the issue describes: boot → serve → shutdown
/// persists → boot again → the second service absorbs the entire stream
/// from the snapshot with zero backend solves.
#[test]
fn service_warm_boot_serves_with_zero_solves() {
    let (catalog, queries) = mixed_stream(7, 4, 2, 3);
    let path = tmp_snapshot("service-warmboot");
    std::fs::remove_file(&path).ok();

    let cold = QueryService::new(catalog.clone(), backend())
        .with_workers(2)
        .with_options(options())
        .with_snapshot(&path);
    let expected: Vec<SessionOutcome> = cold
        .submit_many(queries.iter().cloned())
        .iter()
        .map(|t| t.wait().unwrap())
        .collect();
    let cold_stats = cold.shutdown(); // drop path writes the snapshot
    assert!(cold_stats.backend_solves > 0);
    assert_eq!(
        cold_stats.snapshot_entries_written, 6,
        "3 topologies x 2 unique"
    );

    let warm = QueryService::new(catalog, backend())
        .with_workers(2)
        .with_options(options())
        .with_snapshot(&path);
    assert_eq!(warm.explain().snapshot_entries_loaded, 6);
    assert_eq!(warm.explain().snapshot_entries_rejected, 0);
    let tickets = warm.submit_many(queries.iter().cloned());
    for (i, (e, t)) in expected.iter().zip(&tickets).enumerate() {
        assert_values_identical(&format!("service query={i}"), e, &t.wait().unwrap());
    }
    let warm_stats = warm.shutdown();
    assert_eq!(warm_stats.backend_solves, 0, "warm boot absorbs the stream");
    assert_eq!(warm_stats.warm_hits, queries.len() as u64);
    std::fs::remove_file(&path).ok();
}

/// An explicit mid-serving `snapshot()` must not block submissions: the
/// export runs against brief per-shard locks, never the claim protocol.
#[test]
fn explicit_snapshot_while_serving_does_not_block() {
    let (catalog, queries) = mixed_stream(13, 4, 2, 2);
    let path = tmp_snapshot("live-export");
    let service = QueryService::new(catalog, backend())
        .with_workers(2)
        .with_options(options());
    let tickets = service.submit_many(queries.iter().cloned());
    let written = service.snapshot(&path).unwrap();
    for t in &tickets {
        t.wait().unwrap();
    }
    // The live export saw some prefix of the cache (possibly empty); a
    // post-drain export captures everything.
    let finished = service.snapshot(&path).unwrap();
    assert!(finished.entries >= written.entries);
    assert_eq!(finished.entries, 6);
    assert_eq!(
        service.explain().snapshot_entries_written,
        written.entries + finished.entries
    );
    service.shutdown();
    std::fs::remove_file(&path).ok();
}
