//! Acceptance surface of the `PlanSession` service API: batched query
//! streams share backend solves through the structure-keyed plan cache,
//! outcomes stay exact-cost truthful, and the hybrid's guarantees are
//! computed in cost space.

use std::time::Duration;

use milpjoin::{
    EncoderConfig, HybridOptimizer, JoinOrderer, OrderingOptions, PlanSession, Precision,
};
use milpjoin_dp::{DpOptimizer, GreedyOptimizer};
use milpjoin_qopt::cost::plan_cost;
use milpjoin_workloads::{Topology, WorkloadSpec};

fn session_options() -> OrderingOptions {
    OrderingOptions::with_time_limit(Duration::from_secs(20))
}

/// The ISSUE's acceptance criterion: 20 structurally identical star
/// queries through `optimize_batch` perform exactly one backend solve —
/// the rest are cache hits — and the hybrid outcome's guaranteed factor is
/// computed in exact-cost space (verified against `plan_cost`).
#[test]
fn twenty_identical_star_queries_solve_once() {
    let spec = WorkloadSpec::new(Topology::Star, 8);
    let (catalog, queries) = spec.generate_stream(42, 1, 20);
    assert_eq!(queries.len(), 20);

    let config = EncoderConfig::default().precision(Precision::Low);
    let backend = HybridOptimizer::new(config.clone());
    let mut session = PlanSession::new(catalog, Box::new(backend)).with_options(session_options());

    let results = session.optimize_batch(&queries);
    let stats = session.explain();
    assert_eq!(stats.queries, 20);
    assert_eq!(stats.backend_solves, 1, "exactly one backend solve");
    assert_eq!(stats.cache_hits, 19, "all other queries are cache hits");
    assert_eq!(stats.exact_hits, 19, "identical copies hit exactly");
    assert_eq!(session.cache_len(), 1);

    let mut costs = Vec::new();
    for (query, result) in queries.iter().zip(&results) {
        let out = result.as_ref().expect("hybrid never fails with a seed");
        out.outcome.plan.validate(query).unwrap();
        // Outcome costs are always exact — recomputed through plan_cost.
        let exact = plan_cost(
            session.catalog(),
            query,
            &out.outcome.plan,
            config.cost_model,
            &config.cost_params,
        )
        .total;
        assert!(
            (out.outcome.cost - exact).abs() <= 1e-9 * (1.0 + exact.abs()),
            "outcome cost {:.6e} != plan_cost {exact:.6e}",
            out.outcome.cost
        );
        costs.push(out.outcome.cost);
    }
    // Structurally identical queries: identical exact costs.
    for &c in &costs[1..] {
        assert!((c - costs[0]).abs() <= 1e-9 * (1.0 + costs[0].abs()));
    }
    assert!(!results[0].as_ref().unwrap().cache_hit);
    assert!(results[1..].iter().all(|r| r.as_ref().unwrap().cache_hit));

    // Cost-space guarantee regression: if the solve proved a bound, the
    // factor is exact-cost / cost-space bound — identical maths to the
    // recomputed plan_cost — and exact hits carry it unchanged.
    let solved = &results[0].as_ref().unwrap().outcome;
    if let Some(bound) = solved.bound {
        assert!(bound > 0.0);
        assert_eq!(
            solved.guaranteed_factor(),
            Some((costs[0] / bound).max(1.0)),
            "guaranteed factor must be computed from the exact cost"
        );
        let hit = &results[7].as_ref().unwrap().outcome;
        assert_eq!(hit.bound, solved.bound);
        assert_eq!(hit.guaranteed_factor(), solved.guaranteed_factor());
    }
}

/// Mixed streams: distinct structures get distinct solves, repeats share
/// them, per-topology.
#[test]
fn mixed_stream_solves_once_per_structure() {
    for topology in [Topology::Chain, Topology::Cycle] {
        let spec = WorkloadSpec::new(topology, 6);
        let (catalog, queries) = spec.generate_stream(7, 3, 4); // 12 queries
        let backend = HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low));
        let mut session =
            PlanSession::new(catalog, Box::new(backend)).with_options(session_options());
        for r in session.optimize_batch(&queries) {
            r.unwrap();
        }
        let stats = session.explain();
        assert_eq!(stats.backend_solves, 3, "{topology:?}");
        assert_eq!(stats.cache_hits, 9, "{topology:?}");
        assert_eq!(session.cache_len(), 3, "{topology:?}");
    }
}

/// DP-backed sessions carry proven optimality across exact hits.
#[test]
fn dp_session_carries_certificates() {
    let spec = WorkloadSpec::new(Topology::Star, 6);
    let (catalog, queries) = spec.generate_stream(5, 1, 3);
    let mut session =
        PlanSession::new(catalog, Box::new(DpOptimizer::default())).with_options(session_options());
    let results = session.optimize_batch(&queries);
    for r in &results {
        let out = &r.as_ref().unwrap().outcome;
        assert!(out.proven_optimal);
        assert_eq!(out.guaranteed_factor(), Some(1.0));
    }
    assert_eq!(session.explain().backend_solves, 1);
}

/// Sessions are deterministic: the same stream against two fresh sessions
/// produces the same plans, costs and hit pattern.
#[test]
fn sessions_are_deterministic() {
    let spec = WorkloadSpec::new(Topology::Cycle, 6);
    let run = || {
        let (catalog, queries) = spec.generate_stream(9, 2, 3);
        let backend = HybridOptimizer::new(EncoderConfig::default().precision(Precision::Low));
        let mut session =
            PlanSession::new(catalog, Box::new(backend)).with_options(session_options());
        let results = session.optimize_batch(&queries);
        results
            .into_iter()
            .map(|r| {
                let r = r.unwrap();
                (r.cache_hit, r.outcome.cost, r.outcome.plan.order.clone())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// Greedy-backed sessions: cache hits of a guarantee-free backend stay
/// guarantee-free (no phantom certificates appear).
#[test]
fn greedy_session_stays_honest() {
    let spec = WorkloadSpec::new(Topology::Chain, 7);
    let (catalog, queries) = spec.generate_stream(2, 1, 4);
    let mut session = PlanSession::new(catalog, Box::new(GreedyOptimizer::default()));
    for r in session.optimize_batch(&queries) {
        let out = r.unwrap().outcome;
        assert!(out.bound.is_none());
        assert!(!out.proven_optimal);
        assert!(out.guaranteed_factor().is_none());
    }
    assert_eq!(session.explain().backend_solves, 1);
}

/// The backend's configured cost model is visible through the trait — the
/// session uses it to re-cost cached plans, so it must match the config.
#[test]
fn cost_model_accessor_reflects_configuration() {
    use milpjoin_qopt::cost::CostModelKind;
    let hybrid = HybridOptimizer::new(EncoderConfig::default().cost_model(CostModelKind::Hash));
    assert_eq!(hybrid.cost_model().0, CostModelKind::Hash);
    let dp = DpOptimizer::new(CostModelKind::SortMerge);
    assert_eq!(dp.cost_model().0, CostModelKind::SortMerge);
}
