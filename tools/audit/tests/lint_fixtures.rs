//! Seeded-mutation self-tests for the linter: each fixture file plants
//! known violations of one rule class plus nearby decoys that must stay
//! clean. Expected findings are declared *in* the fixtures as
//! `// FLAG: <rule>` markers on the flagged line; this test compares the
//! marker set against the linter's findings exactly — so a rule that
//! goes blind (misses a seeded bug) and a rule that over-fires (flags a
//! decoy) both fail.

use std::collections::BTreeSet;

use milpjoin_audit::{lint_source, RULE_NAMES};

/// (line, rule) pairs a fixture expects, read from its FLAG markers.
/// Only markers naming a real rule count, so prose mentioning the marker
/// syntax stays inert.
fn expected(source: &str) -> BTreeSet<(usize, String)> {
    source
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let rule = l.split("FLAG:").nth(1)?.trim();
            RULE_NAMES
                .contains(&rule)
                .then(|| (i + 1, rule.to_string()))
        })
        .collect()
}

fn check(rel: &str, source: &str) {
    let want = expected(source);
    let got: BTreeSet<(usize, String)> = lint_source(rel, source)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    assert_eq!(
        got,
        want,
        "linter findings diverge from fixture markers in {rel}\n  \
         flagged-but-unmarked: {:?}\n  marked-but-missed: {:?}",
        got.difference(&want).collect::<Vec<_>>(),
        want.difference(&got).collect::<Vec<_>>(),
    );
    assert!(
        !want.is_empty() || rel.contains("clean"),
        "fixture {rel} seeds no violations"
    );
}

#[test]
fn seeded_panics_are_detected() {
    check(
        "fixtures/bad_panics.rs",
        include_str!("fixtures/bad_panics.rs"),
    );
}

#[test]
fn seeded_wall_clock_reads_are_detected() {
    check(
        "fixtures/bad_clock.rs",
        include_str!("fixtures/bad_clock.rs"),
    );
}

#[test]
fn seeded_hash_iteration_is_detected() {
    check("fixtures/bad_iter.rs", include_str!("fixtures/bad_iter.rs"));
}

#[test]
fn seeded_lock_discipline_breaches_are_detected() {
    check("fixtures/pool.rs", include_str!("fixtures/pool.rs"));
}

#[test]
fn seeded_wildcard_matches_are_detected() {
    check(
        "fixtures/bad_match.rs",
        include_str!("fixtures/bad_match.rs"),
    );
}

#[test]
fn seeded_fs_access_is_detected() {
    check("fixtures/bad_fs.rs", include_str!("fixtures/bad_fs.rs"));
}

#[test]
fn clean_fixture_stays_clean() {
    check("fixtures/clean.rs", include_str!("fixtures/clean.rs"));
}

#[test]
fn malformed_allow_is_a_finding() {
    let src =
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // audit-allow(no-panik): typo\n}\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // The typo'd allow suppresses nothing AND is reported itself.
    assert!(rules.contains(&"no-panic"), "findings: {findings:?}");
    assert!(rules.contains(&"audit-allow"), "findings: {findings:?}");
}

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // audit-allow(no-panic):\n}\n";
    let findings = lint_source("crates/core/src/x.rs", src);
    assert!(
        findings.iter().any(|f| f.rule == "audit-allow"),
        "findings: {findings:?}"
    );
}
