//! Seeded no-unordered-iter violations: iteration over hash collections
//! whose order is randomized. `FLAG: <rule>` marks expected findings.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    plans: HashMap<u64, String>,
}

pub fn violations(reg: &Registry, pending: HashSet<u64>) -> Vec<u64> {
    let mut tags = HashMap::new();
    tags.insert(1u64, "a");
    let plans = &reg.plans;
    let mut out: Vec<u64> = plans.keys().copied().collect(); // FLAG: no-unordered-iter
    for t in &pending { // FLAG: no-unordered-iter
        out.push(*t);
    }
    out.extend(tags.values().map(|v| v.len() as u64)); // FLAG: no-unordered-iter
    out
}

pub fn decoys(reg: &Registry, ids: Vec<u64>) -> usize {
    // Point lookups and membership are order-independent: fine.
    let hit = ids.iter().filter(|i| reg.plans.contains_key(i)).count();
    // Vec iteration is ordered: fine.
    let v: Vec<u64> = ids.into_iter().collect();
    hit + v.len()
}

pub fn allowed(reg: &Registry) -> usize {
    // audit-allow(no-unordered-iter): fixture decoy — the fold below is
    // commutative, so visit order cannot change the result.
    reg.plans.values().map(String::len).sum()
}
