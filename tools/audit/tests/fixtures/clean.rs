//! A clean file: every rule's nearby-but-legal form. Must produce zero
//! findings.

use std::collections::HashMap;

pub struct Index {
    by_id: HashMap<u64, usize>,
    ordered: Vec<u64>,
}

impl Index {
    pub fn lookup(&self, id: u64) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Ordered iteration goes through the Vec, not the map.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.ordered.iter().copied()
    }
}

pub fn robust(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

pub fn elapsed_via_shim() -> std::time::Duration {
    let start = milpjoin_shim::time::now();
    milpjoin_shim::time::now().saturating_duration_since(start)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 1);
        Some(5u32).unwrap();
    }
}
