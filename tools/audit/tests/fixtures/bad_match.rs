//! Seeded stop-reason-exhaustive violations: wildcard arms in matches
//! over the stop-classification enum. `FLAG: <rule>` marks expected
//! findings.

pub enum StopReason {
    Finished,
    TimeLimit,
    NodeLimit,
    Stalled,
}

pub fn violation_wildcard(stop: StopReason) -> &'static str {
    match stop {
        StopReason::TimeLimit => "timeout",
        _ => "other", // FLAG: stop-reason-exhaustive
    }
}

pub fn violation_guarded_wildcard(stop: StopReason, n: u64) -> &'static str {
    match stop {
        StopReason::NodeLimit => "nodes",
        _ if n > 0 => "partial", // FLAG: stop-reason-exhaustive
        _ => "none", // FLAG: stop-reason-exhaustive
    }
}

pub fn decoy_exhaustive(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Finished => "done",
        StopReason::TimeLimit => "timeout",
        StopReason::NodeLimit => "nodes",
        StopReason::Stalled => "stalled",
    }
}

pub fn decoy_other_enum(x: Option<u32>) -> u32 {
    // Wildcards over non-classification enums are fine.
    match x {
        Some(v) => v,
        _ => 0,
    }
}

pub fn decoy_nested_other_enum(stop: StopReason, x: Option<u32>) -> u32 {
    // The inner match is over Option, not StopReason: its wildcard is
    // fine even though the outer match names the enum in its arms.
    match stop {
        StopReason::Finished => match x {
            Some(v) => v,
            _ => 1,
        },
        StopReason::TimeLimit => 2,
        StopReason::NodeLimit => 3,
        StopReason::Stalled => 4,
    }
}

pub fn allowed(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Finished => "done",
        // audit-allow(stop-reason-exhaustive): fixture decoy — collapsed
        // tail is intentional here.
        _ => "other",
    }
}
