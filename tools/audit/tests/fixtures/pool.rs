//! Seeded lock-discipline violations. Named `pool.rs` so the
//! concurrent-core rule scope applies to this fixture; `FLAG: <rule>`
//! marks expected findings.

pub struct Shard {
    inner: std::sync::Mutex<Vec<u64>>,
}

pub fn violations(shard: &Shard, cv: &std::sync::Condvar, callback: impl Fn(u64)) {
    let mut guard = shard.inner.lock();
    callback(guard.len() as u64); // FLAG: lock-discipline
    std::thread::sleep(std::time::Duration::from_millis(1)); // FLAG: lock-discipline
    cv.wait(); // FLAG: lock-discipline
    guard.push(1);
}

pub fn violation_solver_under_lock(shard: &Shard, solver: &impl Solve) {
    let state = shard.inner.lock();
    let _ = solver.solve(state.len()); // FLAG: lock-discipline
}

pub trait Solve {
    fn solve(&self, n: usize) -> usize;
}

pub fn decoy_wait_with_guard(shard: &Shard, cv: &std::sync::Condvar) {
    // Handing the guard to the condvar releases it while blocked: fine.
    let mut guard = shard.inner.lock();
    while guard.is_empty() {
        guard = cv.wait(guard);
    }
}

pub fn decoy_blocking_after_scope(shard: &Shard, callback: impl Fn(u64)) {
    let n;
    {
        let guard = shard.inner.lock();
        n = guard.len() as u64;
    }
    callback(n); // guard scope closed above: fine
}

pub fn decoy_explicit_drop(shard: &Shard, callback: impl Fn(u64)) {
    let guard = shard.inner.lock();
    let n = guard.len() as u64;
    drop(guard);
    callback(n); // guard dropped explicitly: fine
}

pub fn allowed(shard: &Shard, callback: impl Fn(u64)) {
    let guard = shard.inner.lock();
    // audit-allow(lock-discipline): fixture decoy — stands in for the
    // pool's by-design serialized event stream.
    callback(guard.len() as u64);
}
