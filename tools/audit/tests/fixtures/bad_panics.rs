//! Seeded no-panic violations; the decoys must NOT be flagged. Lines
//! marked `FLAG: <rule>` are the expected findings — the integration
//! test reads the markers back, so they must stay on the flagged line.

pub fn violations(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // FLAG: no-panic
    let b = x.expect("present"); // FLAG: no-panic
    if a > b {
        panic!("boom"); // FLAG: no-panic
    }
    match a {
        0 => unreachable!(), // FLAG: no-panic
        1 => todo!(), // FLAG: no-panic
        2 => unimplemented!(), // FLAG: no-panic
        _ => a + b,
    }
}

pub fn decoys(x: Option<u32>) -> u32 {
    // Adapters are fine: they never panic.
    let a = x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default();
    // Names merely *containing* the tokens are fine.
    let panicked = a + 1;
    let s = "call .unwrap() or panic!(now)"; // tokens inside a string
    a + panicked + s.len() as u32
}

pub fn allowed(x: Option<u32>) -> u32 {
    // audit-allow(no-panic): fixture decoy — the invariant is proven by
    // the surrounding harness.
    x.unwrap()
}

pub fn allowed_inline(x: Option<u32>) -> u32 {
    x.unwrap() // audit-allow(no-panic): fixture decoy, same-line form.
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        super::violations(Some(3));
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
