//! Seeded no-fs-outside-persist violations. `FLAG: <rule>` marks
//! expected findings (read back by the integration test). The fixture
//! stands in for a non-persist library file reaching for the filesystem
//! directly instead of going through the snapshot tier.

use std::fs; // FLAG: no-fs-outside-persist
use std::path::Path;

pub fn violations(path: &Path) -> bool {
    let read = fs::read(path).is_ok(); // FLAG: no-fs-outside-persist
    let created = std::fs::File::create(path).is_ok(); // FLAG: no-fs-outside-persist
    let opts = std::fs::OpenOptions::new().read(true).open(path).is_ok(); // FLAG: no-fs-outside-persist
    read && created && opts
}

pub fn decoy(offset: usize) -> usize {
    // Mentioning fs::write in a comment is fine — only code counts —
    // and identifiers merely *containing* "fs" are not filesystem calls.
    let offs = offset + 1;
    offs
}

pub fn allowed(path: &Path) -> bool {
    // audit-allow(no-fs-outside-persist): fixture decoy — stands in for
    // a reviewed, deliberate exemption.
    std::fs::metadata(path).is_ok()
}

#[cfg(test)]
mod tests {
    // Test code may touch the filesystem freely (scratch files, fixture
    // corpora): the rule exempts test regions like every other rule.
    #[test]
    fn scratch_files_are_fine() {
        let _ = std::fs::remove_file("scratch.tmp");
    }
}
