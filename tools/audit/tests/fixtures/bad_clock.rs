//! Seeded no-wall-clock violations. `FLAG: <rule>` marks expected
//! findings (read back by the integration test).

use std::time::{Instant, SystemTime}; // FLAG: no-wall-clock

pub fn violations() -> u64 {
    let a = Instant::now(); // FLAG: no-wall-clock
    let b = SystemTime::now(); // FLAG: no-wall-clock
    let _ = (a, b);
    0
}

pub fn decoy() -> std::time::Duration {
    // The approved choke point is fine (`Instant` the *type* is too —
    // only the clock reads are restricted).
    let start: std::time::Instant = milpjoin_shim::time::now();
    milpjoin_shim::time::now().saturating_duration_since(start)
}

pub fn allowed() -> std::time::Instant {
    // audit-allow(no-wall-clock): fixture decoy — stands in for the
    // choke point.
    Instant::now()
}
