//! CLI for the workspace invariant linter. See the library docs for the
//! rule set; `cargo run -p milpjoin-audit -- lint` is the canonical
//! invocation (CI runs it without `--json` for readable logs).

use std::path::PathBuf;
use std::process::ExitCode;

use milpjoin_audit::{lint_workspace, RULE_NAMES};

const USAGE: &str = "usage: milpjoin-audit lint [--json] [--root DIR]

Lints the workspace's library crates for invariant violations.
Exit codes: 0 clean, 1 findings, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut json = false;
    // Default root: the workspace this binary is built from (two levels
    // above tools/audit), so `cargo run -p milpjoin-audit -- lint` works
    // from any cwd.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = match lint_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("audit: I/O error under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", outcome.to_json());
    } else {
        for f in &outcome.findings {
            println!("{f}");
        }
        if outcome.clean() {
            println!(
                "audit: clean — {} files, {} rules",
                outcome.files_scanned,
                RULE_NAMES.len()
            );
        } else {
            println!(
                "audit: {} finding(s) across {} files",
                outcome.findings.len(),
                outcome.files_scanned
            );
        }
    }
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
