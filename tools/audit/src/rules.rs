//! The five invariant rules. Each scanner works on a [`FileScan`] (code
//! channel only — comments and literal bodies are already blanked) and
//! pushes [`Finding`]s, honoring test-region exclusion and inline allows.

use crate::scan::FileScan;
use crate::Finding;

/// Files (workspace-relative suffixes) exempt from a rule wholesale, with
/// the justification. Inline allows handle point exemptions; this table
/// is only for files whose *purpose* conflicts with a rule.
pub const FILE_ALLOW: &[(&str, &str, &str)] = &[
    (
        "crates/shim/src/sched.rs",
        "no-panic",
        "deterministic scheduler: panics are the explorer's failure-reporting mechanism",
    ),
    (
        "crates/shim/src/explore.rs",
        "no-panic",
        "interleaving explorer: fail-fast panics carry the failing schedule to the test",
    ),
    (
        "crates/shim/src/time.rs",
        "no-wall-clock",
        "the single approved wall-clock choke point every other read routes through",
    ),
    (
        "crates/qopt/src/persist.rs",
        "no-fs-outside-persist",
        "the snapshot tier itself: the one module allowed to touch the filesystem",
    ),
];

/// Files the lock-discipline rule applies to: the concurrent core, where
/// a shard or pool lock guard may be live. Matched by path suffix so the
/// fixture corpus can opt in.
const LOCK_FILES: &[&str] = &["cache.rs", "service.rs", "pool.rs", "parallel.rs"];

/// Enums whose `match` sites must be exhaustive (no `_` arms): stop and
/// error classification drives budget accounting and fallback routing, so
/// a wildcard silently swallowing a new variant is a correctness bug.
const CLASSIFICATION_ENUMS: &[&str] = &["StopReason"];

fn file_allowed(rel: &str, rule: &str) -> bool {
    FILE_ALLOW
        .iter()
        .any(|(suffix, r, _)| *r == rule && rel.ends_with(suffix))
}

/// Pushes a finding unless the line is test code or carries an allow.
fn emit(out: &mut Vec<Finding>, scan: &FileScan, line: usize, rule: &'static str, message: String) {
    if scan.is_test[line] || scan.allowed(line, rule) || file_allowed(&scan.rel, rule) {
        return;
    }
    out.push(Finding {
        rule,
        file: scan.rel.clone(),
        line: line + 1,
        message,
    });
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `hay` contains `needle` as a standalone token (no identifier
/// character on either side).
fn has_token(hay: &str, needle: &str) -> bool {
    token_pos(hay, needle, 0).is_some()
}

/// Byte position of `needle` in `hay` at or after `from`, requiring an
/// identifier boundary on each side of the needle that *ends* in an
/// identifier character (so `StopReason::` tolerates the variant name
/// that follows, while `match` rejects `matches`).
fn token_pos(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let needs_before = needle.chars().next().is_some_and(is_ident);
    let needs_after = needle.chars().next_back().is_some_and(is_ident);
    let mut start = from;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = !needs_before || at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + needle.len();
        let after_ok = !needs_after || end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Reads the identifier ending immediately before byte `end` (used to
/// recover a method call's receiver).
fn ident_before(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1] as char) {
        start -= 1;
    }
    (start < end).then(|| &line[start..end])
}

/// Reads the identifier starting at byte `start`.
fn ident_at(line: &str, start: usize) -> Option<&str> {
    let end = line[start..]
        .find(|c: char| !is_ident(c))
        .map_or(line.len(), |o| start + o);
    (end > start).then(|| &line[start..end])
}

// ---------------------------------------------------------------------
// Rule: no-panic
// ---------------------------------------------------------------------

/// Library code must not contain panicking constructs: every fallible
/// path returns a classified error or a documented default. `unwrap_or*`
/// adapters are fine; `.unwrap()` / `.expect(…)` / panicking macros are
/// not, absent an `audit-allow(no-panic)` proving the invariant.
pub fn no_panic(scan: &FileScan, out: &mut Vec<Finding>) {
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    for (i, line) in scan.code.iter().enumerate() {
        if line.contains(".unwrap()") {
            emit(out, scan, i, "no-panic", ".unwrap() in library code — classify the error or prove the invariant with audit-allow".into());
        }
        if line.contains(".expect(") {
            emit(out, scan, i, "no-panic", ".expect(…) in library code — classify the error or prove the invariant with audit-allow".into());
        }
        for m in MACROS {
            let word = &m[..m.len() - 1];
            if let Some(pos) = token_pos(line, word, 0) {
                if line.as_bytes().get(pos + word.len()) == Some(&b'!') {
                    emit(out, scan, i, "no-panic", format!("`{m}` in library code"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-wall-clock
// ---------------------------------------------------------------------

/// Wall-clock reads are the one nondeterministic input; they must route
/// through `milpjoin_shim::time::now()` (virtualized under the
/// interleaving explorer) so budget code is auditable and trials are
/// schedule-deterministic.
pub fn no_wall_clock(scan: &FileScan, out: &mut Vec<Finding>) {
    for (i, line) in scan.code.iter().enumerate() {
        if line.contains("Instant::now") {
            emit(
                out,
                scan,
                i,
                "no-wall-clock",
                "direct `Instant::now` — route through milpjoin_shim::time::now()".into(),
            );
        }
        if has_token(line, "SystemTime") {
            emit(
                out,
                scan,
                i,
                "no-wall-clock",
                "`SystemTime` in library code — wall-clock reads route through milpjoin_shim::time"
                    .into(),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-unordered-iter
// ---------------------------------------------------------------------

/// Iterating a `HashMap`/`HashSet` visits entries in randomized order;
/// in a plan-affecting path that turns tie-breaks into run-to-run plan
/// churn. Bindings are collected from declarations and field types in the
/// same file, then every iteration entry point over them is flagged.
pub fn no_unordered_iter(scan: &FileScan, out: &mut Vec<Finding>) {
    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "into_keys",
        "into_values",
        "retain",
    ];
    let mut hashed: Vec<String> = Vec::new();
    for (i, line) in scan.code.iter().enumerate() {
        if scan.is_test[i] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = token_pos(line, ty, from) {
                if let Some(name) = hash_binding_name(line, pos) {
                    if !hashed.iter().any(|h| h == name) {
                        hashed.push(name.to_string());
                    }
                }
                from = pos + ty.len();
            }
        }
    }
    if hashed.is_empty() {
        return;
    }
    for (i, line) in scan.code.iter().enumerate() {
        // `name.method(` where name is a known hash binding.
        for m in ITER_METHODS {
            let pat = format!(".{m}(");
            let mut from = 0;
            while let Some(pos) = line[from..].find(&pat).map(|p| from + p) {
                let end = pos + pat.len();
                if let Some(recv) = ident_before(line, pos) {
                    if hashed.iter().any(|h| h == recv) {
                        emit(out, scan, i, "no-unordered-iter", format!("iteration over hash collection `{recv}` (`.{m}`) — order is randomized; use a sorted or indexed structure in plan-affecting paths"));
                    }
                }
                from = end;
            }
        }
        // `for x in [&[mut ]]name`.
        if let Some(pos) = token_pos(line, "in", 0) {
            let rest = line[pos + 2..].trim_start();
            let rest = rest.strip_prefix("&mut ").unwrap_or(rest);
            let rest = rest.strip_prefix('&').unwrap_or(rest);
            if let Some(name) = ident_at(rest, 0) {
                if hashed.iter().any(|h| h == name) && has_token(line, "for") {
                    emit(
                        out,
                        scan,
                        i,
                        "no-unordered-iter",
                        format!(
                            "`for … in {name}` iterates a hash collection — order is randomized"
                        ),
                    );
                }
            }
        }
    }
}

/// Recovers the binding name a `HashMap`/`HashSet` occurrence declares,
/// if any: `let [mut] name = Hash…` or `name: [&[mut ]]Hash…` (fields,
/// params). Returns `None` for uses that declare nothing (paths, turbofish
/// call expressions, …).
fn hash_binding_name(line: &str, ty_pos: usize) -> Option<&str> {
    let before = line[..ty_pos].trim_end();
    // Strip a path prefix (`std::collections::`) back to the operator.
    let before = before
        .strip_suffix("std::collections::")
        .or_else(|| before.strip_suffix("collections::"))
        .unwrap_or(before)
        .trim_end();
    if let Some(rest) = before.strip_suffix('=') {
        // `let [mut] name =`
        let rest = rest.trim_end();
        let name = last_ident(rest)?;
        let head = rest[..rest.len() - name.len()].trim_end();
        (head.ends_with("let") || head.ends_with("mut")).then_some(name)
    } else if let Some(rest) = before.strip_suffix(':') {
        // `name: Hash…` — field or parameter declaration (also matches
        // `name: &Hash…` via the reference strip below).
        last_ident(rest.trim_end())
    } else if let Some(rest) = before
        .strip_suffix("&mut")
        .or_else(|| before.strip_suffix('&'))
    {
        let rest = rest.trim_end();
        rest.strip_suffix(':')
            .and_then(|r| last_ident(r.trim_end()))
    } else {
        None
    }
}

fn last_ident(s: &str) -> Option<&str> {
    let end = s.len();
    let start = s
        .rfind(|c: char| !is_ident(c))
        .map_or(0, |p| p + c_len(s, p));
    (start < end && ident_at(s, start).is_some()).then(|| &s[start..end])
}

fn c_len(s: &str, p: usize) -> usize {
    s[p..].chars().next().map_or(1, char::len_utf8)
}

// ---------------------------------------------------------------------
// Rule: lock-discipline
// ---------------------------------------------------------------------

/// In the concurrent core, no blocking call or user-callback invocation
/// may run while a cache-shard or pool lock guard is live: blocking under
/// a shard lock serializes unrelated queries, and a callback can run
/// arbitrary user code (re-entrancy, deadlock). Guards are tracked
/// lexically: a `let g = ….lock()` (or a condvar-wait rebinding) is live
/// until its block closes or an explicit `drop(g)`.
pub fn lock_discipline(scan: &FileScan, out: &mut Vec<Finding>) {
    if !LOCK_FILES.iter().any(|f| scan.rel.ends_with(f)) {
        return;
    }
    const BLOCKING: &[(&str, &str)] = &[
        (".wait()", "argumentless blocking wait"),
        ("thread::sleep", "sleep"),
        (".join()", "thread join"),
        (".recv()", "channel receive"),
        (".order(", "backend solve entry"),
        (".solve(", "solver entry"),
    ];
    let mut guards: Vec<(String, usize, usize)> = Vec::new(); // (name, decl_line, decl_depth)
    for (i, line) in scan.code.iter().enumerate() {
        if scan.is_test[i] {
            guards.clear();
            continue;
        }
        if !guards.is_empty() {
            for (pat, what) in BLOCKING {
                if line.contains(pat) {
                    let (g, at, _) = &guards[guards.len() - 1];
                    emit(
                        out,
                        scan,
                        i,
                        "lock-discipline",
                        format!(
                            "{what} (`{pat}`) while lock guard `{g}` (acquired line {}) is live",
                            at + 1
                        ),
                    );
                }
            }
            if line.contains("callback(") || line.contains("callback)(") {
                let (g, at, _) = &guards[guards.len() - 1];
                emit(out, scan, i, "lock-discipline", format!("callback invocation while lock guard `{g}` (acquired line {}) is live — callbacks run arbitrary user code", at + 1));
            }
            // Explicit early drop releases the guard mid-block.
            guards.retain(|(name, _, _)| !line.contains(&format!("drop({name})")));
        }
        // A guard binding: `let g = ….lock();` (or a wait rebinding that
        // carries the guard). A `.lock()` mid-chain is a statement-level
        // temporary, not a live binding — require the call to end the
        // statement or the line.
        let locks_at_end = line.contains(".lock();") || line.trim_end().ends_with(".lock()");
        if locks_at_end && has_token(line, "let") {
            if let Some(name) = let_binding_name(line) {
                guards.push((name.to_string(), i, scan.depth[i]));
            }
        }
        let after = scan.end_depth(i);
        guards.retain(|(_, _, d)| after >= *d);
    }
}

/// The binding name of a `let` statement: `let [mut] name = …` or the
/// first element of a tuple pattern `let (name, …) = …`.
fn let_binding_name(line: &str) -> Option<&str> {
    let pos = token_pos(line, "let", 0)?;
    let mut rest = line[pos + 3..].trim_start();
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    if let Some(tuple) = rest.strip_prefix('(') {
        let inner = tuple.trim_start();
        let inner = inner.strip_prefix("mut ").unwrap_or(inner).trim_start();
        return ident_at(inner, 0);
    }
    ident_at(rest, 0)
}

// ---------------------------------------------------------------------
// Rule: stop-reason-exhaustive
// ---------------------------------------------------------------------

/// `match` sites over the classification enums must name every variant:
/// a `_` arm silently absorbs newly added stop reasons, which corrupts
/// budget accounting and fallback routing without a compile error. The
/// scanner attributes each enum mention and each wildcard arm to its
/// innermost `match` block, so nesting over other enums is not flagged.
pub fn stop_reason_exhaustive(scan: &FileScan, out: &mut Vec<Finding>) {
    // Flatten to one ASCII stream (byte index == char index) with a line
    // index per position; non-ASCII chars can only appear inside blanked
    // regions' neighbors and are never part of a token we search for.
    let mut text = String::new();
    let mut line_of: Vec<usize> = Vec::new();
    for (i, l) in scan.code.iter().enumerate() {
        for c in l.chars() {
            text.push(if c.is_ascii() { c } else { ' ' });
            line_of.push(i);
        }
        text.push('\n');
        line_of.push(i);
    }
    let chars: Vec<char> = text.chars().collect();
    let depth_at = char_depths(&chars);

    // Collect match blocks: (open brace pos, close pos, body depth).
    let mut blocks: Vec<(usize, usize, usize)> = Vec::new();
    let mut from = 0;
    while let Some(kw) = token_pos(&text, "match", from) {
        from = kw + 5;
        if scan.is_test[line_of[kw]] {
            continue;
        }
        // The match body opens at the first `{` at or below the keyword's
        // depth before a `;` ends the expression search.
        let mut j = kw + 5;
        let open = loop {
            match chars.get(j) {
                Some('{') => break Some(j),
                Some(';') | None => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else { continue };
        // `char_depths` assigns an opening brace the depth it creates, so
        // the body's arm-level positions share the open brace's depth.
        let body_depth = depth_at[open];
        let mut close = open + 1;
        while close < chars.len() && !(chars[close] == '}' && depth_at[close] == body_depth) {
            close += 1;
        }
        blocks.push((open, close, body_depth));
    }

    let innermost = |pos: usize| -> Option<usize> {
        blocks
            .iter()
            .enumerate()
            .filter(|(_, (o, c, _))| *o < pos && pos < *c)
            .min_by_key(|(_, (o, c, _))| c - o)
            .map(|(i, _)| i)
    };

    // Attribute classification-enum mentions to their innermost block.
    let mut relevant = vec![false; blocks.len()];
    for e in CLASSIFICATION_ENUMS {
        let pat = format!("{e}::");
        let mut from = 0;
        while let Some(pos) = token_pos(&text, &pat, from) {
            if let Some(b) = innermost(pos) {
                relevant[b] = true;
            }
            from = pos + pat.len();
        }
    }

    // Wildcard arms: a `_` token followed by `=>` (or a match guard `if`)
    // at arm depth of a relevant block.
    for (pos, &c) in chars.iter().enumerate() {
        if c != '_' {
            continue;
        }
        let prev_ok = pos == 0 || !is_ident(chars[pos - 1]);
        let next_ok = chars.get(pos + 1).is_none_or(|&n| !is_ident(n));
        if !prev_ok || !next_ok {
            continue;
        }
        let mut j = pos + 1;
        while chars.get(j).is_some_and(|ch| ch.is_whitespace()) {
            j += 1;
        }
        let arrow = chars.get(j) == Some(&'=') && chars.get(j + 1) == Some(&'>');
        let guard = chars.get(j) == Some(&'i')
            && chars.get(j + 1) == Some(&'f')
            && chars.get(j + 2).is_none_or(|&ch| !is_ident(ch));
        if !arrow && !guard {
            continue;
        }
        let Some(b) = innermost(pos) else { continue };
        let (_, _, body_depth) = blocks[b];
        if relevant[b] && depth_at[pos] == body_depth {
            let enums = CLASSIFICATION_ENUMS.join("/");
            emit(out, scan, line_of[pos], "stop-reason-exhaustive", format!("wildcard arm in a `match` over {enums} — name every variant so new classifications fail the build instead of being silently absorbed"));
        }
    }
}

/// Brace depth at each char position (depth *of* the char: an opening
/// brace sits at the depth it creates; a closing brace at the depth it
/// closes).
fn char_depths(chars: &[char]) -> Vec<usize> {
    let mut out = Vec::with_capacity(chars.len());
    let mut d = 0usize;
    for &c in chars {
        match c {
            '{' => {
                d += 1;
                out.push(d);
            }
            '}' => {
                out.push(d);
                d = d.saturating_sub(1);
            }
            _ => out.push(d),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule: no-fs-outside-persist
// ---------------------------------------------------------------------

/// Durable state goes through `qopt::persist` only: snapshots there are
/// versioned, checksummed, and written atomically (temp file + rename).
/// A stray `std::fs` call anywhere else bypasses every one of those
/// guarantees — a half-written file served on the next boot, or an
/// unversioned format nobody can evolve.
pub fn no_fs_outside_persist(scan: &FileScan, out: &mut Vec<Finding>) {
    const TOKENS: &[&str] = &[
        "std::fs",
        "fs::",
        "File::create",
        "File::open",
        "OpenOptions",
    ];
    for (i, line) in scan.code.iter().enumerate() {
        for t in TOKENS {
            if has_token(line, t) {
                emit(out, scan, i, "no-fs-outside-persist", format!("`{t}` outside the persist module — durable state goes through qopt::persist snapshots (versioned, checksummed, atomically replaced)"));
                break;
            }
        }
    }
}

/// Reports malformed `audit-allow` annotations (unknown rule, missing
/// reason) so a typo cannot silently suppress a diagnostic.
pub fn malformed_allows(scan: &FileScan, out: &mut Vec<Finding>) {
    for (i, problem) in &scan.malformed_allows {
        if scan.is_test[*i] {
            continue;
        }
        out.push(Finding {
            rule: "audit-allow",
            file: scan.rel.clone(),
            line: i + 1,
            message: problem.clone(),
        });
    }
}
