//! `milpjoin-audit` — the workspace invariant linter.
//!
//! A dependency-free static checker for the correctness invariants the
//! type system cannot see. Six rules:
//!
//! * **`no-panic`** — library code returns classified errors; no
//!   `.unwrap()` / `.expect(…)` / panicking macros outside test code and
//!   proven-invariant allows.
//! * **`no-wall-clock`** — all wall-clock reads route through
//!   `milpjoin_shim::time::now()` (the virtualizable choke point); no
//!   direct `Instant::now` / `SystemTime`.
//! * **`no-unordered-iter`** — no iteration over `HashMap`/`HashSet`
//!   in plan-affecting paths (randomized order ⇒ run-to-run plan churn).
//! * **`lock-discipline`** — in the concurrent core, no blocking call or
//!   user-callback invocation while a cache-shard or pool lock guard is
//!   live.
//! * **`stop-reason-exhaustive`** — `match` sites over the stop/error
//!   classification enums name every variant (no `_` arms).
//! * **`no-fs-outside-persist`** — filesystem access lives in
//!   `qopt::persist` only; durable state goes through the versioned,
//!   checksummed, atomically written snapshot tier.
//!
//! Point exemptions use the inline escape hatch — a comment on the same
//! line or the line(s) directly above:
//!
//! ```text
//! // audit-allow(no-panic): loop guard proves the shard is non-empty.
//! ```
//!
//! The rule name must be real and the reason non-empty; malformed allows
//! are themselves findings (rule `audit-allow`). Run as
//! `cargo run -p milpjoin-audit -- lint` from the workspace root; exits
//! nonzero when findings exist, and `--json` emits a machine-readable
//! report for CI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod rules;
pub mod scan;
pub mod strip;

/// Rule identifiers accepted by `audit-allow(...)`.
pub const RULE_NAMES: &[&str] = &[
    "no-panic",
    "no-wall-clock",
    "no-unordered-iter",
    "lock-discipline",
    "stop-reason-exhaustive",
    "no-fs-outside-persist",
];

/// Workspace-relative directories the linter walks: every library crate's
/// sources plus the root facade. `crates/bench` is deliberately absent —
/// harness binaries may time, print, and panic.
pub const SCAN_ROOTS: &[&str] = &[
    "src",
    "crates/core/src",
    "crates/milp/src",
    "crates/dp/src",
    "crates/qopt/src",
    "crates/shim/src",
    "crates/workloads/src",
];

/// One diagnostic: a rule violated at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a file set.
pub struct LintOutcome {
    pub files_scanned: usize,
    /// Sorted by (file, line, rule) — deterministic across runs.
    pub findings: Vec<Finding>,
}

impl LintOutcome {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Machine-readable report (hand-rolled JSON — the workspace takes no
    /// external dependencies).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"version\": 1,\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"findings_total\": {},\n", self.findings.len()));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints one source text under its workspace-relative path. The unit the
/// fixture self-tests drive directly.
pub fn lint_source(rel: &str, source: &str) -> Vec<Finding> {
    let scan = scan::FileScan::analyze(rel, source);
    let mut out = Vec::new();
    rules::no_panic(&scan, &mut out);
    rules::no_wall_clock(&scan, &mut out);
    rules::no_unordered_iter(&scan, &mut out);
    rules::lock_discipline(&scan, &mut out);
    rules::stop_reason_exhaustive(&scan, &mut out);
    rules::no_fs_outside_persist(&scan, &mut out);
    rules::malformed_allows(&scan, &mut out);
    out
}

/// Walks [`SCAN_ROOTS`] under `root` and lints every `.rs` file.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        let abs = root.join(dir);
        if abs.is_dir() {
            collect_rs(&abs, &mut files)?;
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(path)?;
        findings.extend(lint_source(&rel, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(LintOutcome {
        files_scanned: files.len(),
        findings,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_yields_no_findings() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn json_escapes_and_shape() {
        let out = LintOutcome {
            files_scanned: 1,
            findings: vec![Finding {
                rule: "no-panic",
                file: "a\"b.rs".into(),
                line: 3,
                message: "x\ny".into(),
            }],
        };
        let j = out.to_json();
        assert!(j.contains("\"files_scanned\": 1"));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
    }
}
