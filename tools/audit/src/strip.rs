//! Lexical preprocessing: blank out comments and string/char literals so
//! the rule scanners only ever see code tokens, while capturing comment
//! text separately (the `audit-allow` escape hatch lives in comments).
//!
//! This is a deliberately small hand-rolled lexer — the workspace takes no
//! external dependencies, so there is no `syn` to lean on. It understands
//! line comments, nested block comments, string/byte-string literals with
//! escapes, raw strings (`r#"…"#`), and the char-literal/lifetime
//! ambiguity. Column positions inside blanked regions are preserved
//! (every blanked character becomes a space), so diagnostics and brace
//! tracking keep working on the stripped text.

/// Per-line split of a source file into code and comment channels.
pub struct Stripped {
    /// Source lines with comments and literal *bodies* blanked to spaces.
    pub code: Vec<String>,
    /// Comment text per line (line + block comments, concatenated).
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */` (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; the flag records a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given hash count.
    RawStr {
        hashes: u32,
    },
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `source` into code and comment channels (see [`Stripped`]).
pub fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                let prev = i.checked_sub(1).and_then(|p| chars.get(p)).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    // Entering a plain (or byte) string; the opening quote
                    // stays in the code channel as a harmless marker.
                    state = State::Str { escaped: false };
                    code_line.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev.is_some_and(is_ident)
                    && raw_string_open(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_string_open(&chars, i).unwrap();
                    state = State::RawStr { hashes };
                    for _ in 0..skip {
                        code_line.push(' ');
                    }
                    code_line.push('"');
                    i += skip + 1;
                } else if c == '\'' && !prev.is_some_and(is_ident) {
                    // Char literal vs lifetime: a literal closes within a
                    // few chars (`'x'`, `'\n'`, `'\u{1F600}'`); a lifetime
                    // never has a closing quote before a non-ident char.
                    if let Some(end) = char_literal_end(&chars, i) {
                        code_line.push('\'');
                        for _ in i + 1..end {
                            code_line.push(' ');
                        }
                        code_line.push('\'');
                        i = end + 1;
                    } else {
                        code_line.push('\'');
                        i += 1;
                    }
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code_line.push_str("  ");
                    comment_line.push_str("/*");
                    i += 2;
                } else {
                    comment_line.push(c);
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                    code_line.push(' ');
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                    code_line.push(' ');
                } else if c == '"' {
                    state = State::Code;
                    code_line.push('"');
                } else {
                    code_line.push(' ');
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    state = State::Code;
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    Stripped { code, comments }
}

/// If position `i` opens a raw (byte) string, returns `(hash_count,
/// chars_before_quote)`; `i` points at the leading `r` or `b`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some((hashes, j - i))
}

fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If position `i` (a `'`) starts a char literal, returns the index of the
/// closing quote; `None` means it is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped literal: scan to the closing quote (bounded — an
            // unclosed escape means malformed source; give up at EOL).
            let mut j = i + 2;
            while let Some(&c) = chars.get(j) {
                if c == '\'' {
                    return Some(j);
                }
                if c == '\n' {
                    return None;
                }
                j += 1;
            }
            None
        }
        '\'' => None, // `''` — not a literal
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

#[cfg(test)]
mod tests {
    use super::strip;

    #[test]
    fn line_comment_moves_to_comment_channel() {
        let s = strip("let x = 1; // audit-allow(no-panic): fine\n");
        assert_eq!(s.code[0].trim_end(), "let x = 1;");
        assert!(s.comments[0].contains("audit-allow(no-panic)"));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let s = strip("call(\".unwrap() panic!\");\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[0].contains("call(\""));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = strip("let a = r#\"x \" .unwrap()\"#; let b = \"\\\" .expect(\";\n");
        assert!(!s.code[0].contains("unwrap"));
        assert!(!s.code[0].contains("expect"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = strip("fn f<'a>(x: &'a str) { let c = '{'; g(c) }\n");
        // The brace inside the char literal must not leak into code.
        let opens = s.code[0].matches('{').count();
        let closes = s.code[0].matches('}').count();
        assert_eq!(opens, closes, "stripped: {:?}", s.code[0]);
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("a /* x /* y */ z */ b\n");
        assert_eq!(s.code[0].split_whitespace().collect::<Vec<_>>(), ["a", "b"]);
    }
}
