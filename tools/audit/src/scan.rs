//! Per-file analysis shared by every rule: brace depths, test-region
//! exclusion, and the `audit-allow` escape hatch.
//!
//! Test exclusion is attribute-driven: after a `#[cfg(test…)]` or
//! `#[test]` attribute, the next item's brace block (or single statement)
//! is test code and exempt from every rule. Allows are parsed from the
//! comment channel: `audit-allow(rule): reason` on a code line applies to
//! that line; on a comment-only line it applies to the next code-bearing
//! line (so a wrapped justification comment above the construct works).
//! An allow with an unknown rule name or an empty reason is itself
//! reported (rule `audit-allow`) — a silent typo must not suppress a real
//! diagnostic.

use std::collections::HashMap;

use crate::strip::{strip, Stripped};
use crate::RULE_NAMES;

/// A fully preprocessed source file, ready for the rule scanners.
pub struct FileScan {
    /// Path relative to the workspace root (diagnostics use this).
    pub rel: String,
    /// Code channel: comments and literal bodies blanked (see `strip`).
    pub code: Vec<String>,
    /// Brace depth at the *start* of each line (code channel).
    pub depth: Vec<usize>,
    /// Whether each line is inside a test item (exempt from all rules).
    pub is_test: Vec<bool>,
    /// Resolved allows: line index -> rules allowed on that line.
    allows: HashMap<usize, Vec<String>>,
    /// Malformed `audit-allow` occurrences: (line index, problem).
    pub malformed_allows: Vec<(usize, String)>,
}

impl FileScan {
    pub fn analyze(rel: &str, source: &str) -> FileScan {
        let Stripped { code, comments } = strip(source);
        let n = code.len();

        // Brace depth at line start, from the code channel.
        let mut depth = Vec::with_capacity(n);
        let mut d = 0usize;
        for line in &code {
            depth.push(d);
            for c in line.chars() {
                match c {
                    '{' => d += 1,
                    '}' => d = d.saturating_sub(1),
                    _ => {}
                }
            }
        }
        let end_depth = |i: usize| depth.get(i + 1).copied().unwrap_or(0);

        // Test regions: a test attribute arms the *next* item. An item
        // with a brace block is test until that block closes; a braceless
        // item (e.g. a `use`) is test for its statement line only.
        let mut is_test = vec![false; n];
        let mut pending_attr = false;
        let mut region_floor: Option<usize> = None;
        for i in 0..n {
            if let Some(floor) = region_floor {
                is_test[i] = true;
                if end_depth(i) <= floor {
                    region_floor = None;
                }
                continue;
            }
            let line = code[i].trim();
            if line.contains("#[cfg(test)")
                || line.contains("#[cfg(all(test")
                || line.contains("#[test]")
            {
                pending_attr = true;
                is_test[i] = true;
                // Attribute and item opening on one line.
                if line.contains('{') {
                    region_floor = Some(depth[i]);
                    pending_attr = false;
                    if end_depth(i) <= depth[i] {
                        region_floor = None; // opened and closed inline
                    }
                }
                continue;
            }
            if pending_attr {
                is_test[i] = true;
                if line.contains('{') {
                    pending_attr = false;
                    region_floor = Some(depth[i]);
                    if end_depth(i) <= depth[i] {
                        region_floor = None;
                    }
                } else if line.ends_with(';') {
                    pending_attr = false; // braceless item: one statement
                } else if line.starts_with("#[") {
                    // Stacked attributes: stay armed.
                }
            }
        }

        // Allows: collect raw occurrences, then resolve comment-only
        // lines forward to the next code-bearing line.
        let mut allows: HashMap<usize, Vec<String>> = HashMap::new();
        let mut malformed = Vec::new();
        for i in 0..n {
            for (rule, problem) in parse_allows(&comments[i]) {
                if let Some(problem) = problem {
                    malformed.push((i, problem));
                    continue;
                }
                let target = if code[i].trim().is_empty() {
                    (i + 1..n).find(|&j| !code[j].trim().is_empty())
                } else {
                    Some(i)
                };
                if let Some(t) = target {
                    allows.entry(t).or_default().push(rule.clone());
                    // rustfmt wraps long statements onto chain-continuation
                    // lines (leading `.` or `?.`); the allow covers the
                    // whole wrapped statement, not just its first line.
                    for (j, line) in code.iter().enumerate().skip(t + 1) {
                        let tj = line.trim_start();
                        if tj.starts_with('.') || tj.starts_with("?.") {
                            allows.entry(j).or_default().push(rule.clone());
                        } else if !tj.is_empty() {
                            break;
                        }
                    }
                }
            }
        }

        FileScan {
            rel: rel.to_string(),
            code,
            depth,
            is_test,
            allows,
            malformed_allows: malformed,
        }
    }

    /// Whether `rule` is suppressed on 0-based line `i` by an inline allow.
    pub fn allowed(&self, i: usize, rule: &str) -> bool {
        self.allows
            .get(&i)
            .is_some_and(|rs| rs.iter().any(|r| r == rule))
    }

    /// Brace depth after the last line (0 for balanced files).
    pub fn end_depth(&self, i: usize) -> usize {
        self.depth.get(i + 1).copied().unwrap_or(0)
    }
}

/// Parses every `audit-allow(rule): reason` in one line's comment text.
/// Returns `(rule, None)` for a well-formed allow and `(_, Some(problem))`
/// for a malformed one.
fn parse_allows(comment: &str) -> Vec<(String, Option<String>)> {
    const KEY: &str = "audit-allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(KEY) {
        let after = &rest[pos + KEY.len()..];
        let Some(close) = after.find(')') else {
            out.push((String::new(), Some("unterminated audit-allow".into())));
            return out;
        };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        if !RULE_NAMES.contains(&rule.as_str()) {
            out.push((
                rule.clone(),
                Some(format!("unknown rule `{rule}` in audit-allow")),
            ));
        } else if !tail.trim_start().starts_with(':') || tail.trim_start()[1..].trim().is_empty() {
            out.push((
                rule.clone(),
                Some(format!(
                    "audit-allow({rule}) requires a non-empty `: reason`"
                )),
            ));
        } else {
            out.push((rule, None));
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::FileScan;

    #[test]
    fn test_mod_is_excluded() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let s = FileScan::analyze("x.rs", src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[1] && s.is_test[2] && s.is_test[3] && s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn allow_on_comment_line_carries_to_next_code_line() {
        let src = "// audit-allow(no-panic): proven\n// continuation text\nx.unwrap();\n";
        let s = FileScan::analyze("x.rs", src);
        assert!(s.allowed(2, "no-panic"));
        assert!(!s.allowed(2, "no-wall-clock"));
    }

    #[test]
    fn allow_covers_wrapped_chain_continuations() {
        let src = "// audit-allow(no-panic): proven\nself.lu\n    .as_ref()\n    .expect(\"msg\");\nother();\n";
        let s = FileScan::analyze("x.rs", src);
        assert!(s.allowed(1, "no-panic"));
        assert!(s.allowed(2, "no-panic"));
        assert!(s.allowed(3, "no-panic"));
        assert!(!s.allowed(4, "no-panic"));
    }

    #[test]
    fn malformed_allow_is_reported() {
        let src = "x(); // audit-allow(no-panik): typo\ny(); // audit-allow(no-panic):\n";
        let s = FileScan::analyze("x.rs", src);
        assert_eq!(s.malformed_allows.len(), 2);
        assert!(!s.allowed(0, "no-panic"));
    }
}
