//! Shared helpers for the workspace-level integration tests and examples.

use std::time::Duration;

use milpjoin::{EncoderConfig, MilpOptimizer, OptimizeOptions, OptimizeOutcome, Precision};
use milpjoin_qopt::{Catalog, Query};
use milpjoin_workloads::{Topology, WorkloadSpec};

/// Generates a seeded random workload (re-exported convenience).
pub fn workload(topology: Topology, num_tables: usize, seed: u64) -> (Catalog, Query) {
    WorkloadSpec::new(topology, num_tables).generate(seed)
}

/// Runs the MILP optimizer with a precision and time limit.
pub fn optimize_with(
    catalog: &Catalog,
    query: &Query,
    precision: Precision,
    time_limit: Duration,
) -> Result<OptimizeOutcome, milpjoin::OptimizeError> {
    let optimizer = MilpOptimizer::new(EncoderConfig::default().precision(precision));
    optimizer.optimize(
        catalog,
        query,
        &OptimizeOptions::with_time_limit(time_limit),
    )
}

/// Formats a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let (c, q) = workload(Topology::Chain, 4, 0);
        let out = optimize_with(&c, &q, Precision::Low, Duration::from_secs(10)).unwrap();
        out.plan.validate(&q).unwrap();
        assert_eq!(secs(Duration::from_millis(1500)), "1.50s");
    }
}
